// Package fault is a seeded, deterministic fault injector for the simulated
// Bridge system. It plugs into the message network (drop, extra delay,
// duplication, node partitions) and the disks (transient errors, latent bad
// blocks, slow-disk "limping"), and drives scheduled node crashes and
// restarts at fixed virtual times.
//
// Everything the injector does is a pure function of its seed, its
// configured schedule, and the order in which the simulation consults it.
// Under the virtual clock that order is deterministic, so a chaos run with
// a given seed replays exactly: same faults, same timestamps, same trace.
// The paper concedes that in Bridge "a failure anywhere in the system is
// fatal; it ruins every file" — this package exists to exercise every layer
// that now disagrees.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"bridge/internal/disk"
	"bridge/internal/msg"
	"bridge/internal/obs"
	"bridge/internal/stats"
	"bridge/internal/trace"
)

// ErrInjected is the base error of every injected disk fault, so callers
// (and tests) can distinguish chaos from genuine corruption.
var ErrInjected = errors.New("fault: injected I/O error")

// MsgFaults describes message-layer misbehavior inside a window.
type MsgFaults struct {
	// DropProb is the per-message probability of silent loss.
	DropProb float64
	// DupProb is the per-message probability of one duplicate delivery.
	DupProb float64
	// DelayProb is the per-message probability of extra delay, drawn
	// uniformly from (0, DelayMax].
	DelayProb float64
	DelayMax  time.Duration
}

// DiskFaults describes device-layer misbehavior inside a window.
type DiskFaults struct {
	// ReadErrProb and WriteErrProb are per-access probabilities of a
	// transient error (the access is charged but fails).
	ReadErrProb  float64
	WriteErrProb float64
	// ExtraLatency is added to every access: a limping device.
	ExtraLatency time.Duration
}

// CrashModel describes the fate of a device's volatile write cache when a
// node is power-failed (kill -9). The surviving prefix of unsynced writes
// is always drawn uniformly; TornProb decides whether the first lost write
// additionally lands torn — a seeded prefix of the new image spliced onto
// the old block, exactly what a half-finished sector write leaves behind.
type CrashModel struct {
	// TornProb is the probability that the first lost unsynced write is
	// torn rather than cleanly absent.
	TornProb float64
}

type window struct{ from, to time.Duration }

func (w window) contains(now time.Duration) bool { return now >= w.from && now < w.to }

type msgRule struct {
	window
	f MsgFaults
}

type partition struct {
	window
	a, b msg.NodeID
}

type diskRule struct {
	window
	label string // "" matches every disk
	f     DiskFaults
}

type diskBlock struct {
	label string
	bn    int
}

// bitrotRule flips bits in stored blocks read inside a window, each read
// independently with the given probability — silent corruption, no error.
type bitrotRule struct {
	window
	label string // "" matches every disk
	prob  float64
}

// misdirect reroutes the next write of fromBn on the labeled disk to toBn.
type misdirect struct {
	label  string
	fromBn int
}

// Injector implements msg.FaultHook and disk.FaultHook. Configure it fully
// before the simulation starts; the hook methods themselves are safe for
// concurrent use.
type Injector struct {
	seed  int64
	stats *stats.Counters
	m     injMetrics

	// mu guards everything below, including the rng: the hook methods run
	// on whichever simulated process consults the injector, and a shared
	// unlocked rand.Rand would corrupt its own state — and with it the
	// determinism contract. Never use global math/rand here.
	mu          sync.Mutex
	tracer      *trace.Tracer
	rng         *rand.Rand
	msgRules    []msgRule
	partitions  []partition
	diskRules   []diskRule
	badBlocks   map[diskBlock]bool
	rotPending  map[diskBlock]bool // one-shot bitrot applied at the next read
	rotRules    []bitrotRule
	misdirects  map[misdirect]int // fromBn -> toBn, one-shot
	schedule    []NodeEvent
	srvSchedule []ServerEvent
	crashModel  CrashModel
	blockSizes  map[string]int // disk label -> block size, for torn draws
}

// injMetrics are the injector's typed metric handles: faults injected by
// kind.
type injMetrics struct {
	msgPartitioned  obs.Counter
	msgDropped      obs.Counter
	msgDuplicated   obs.Counter
	msgDelayed      obs.Counter
	diskBadBlock    obs.Counter
	diskTransient   obs.Counter
	diskLimped      obs.Counter
	diskBitrot      obs.Counter
	diskMisdirected obs.Counter
	diskTorn        obs.Counter
	diskLost        obs.Counter
	nodeCrashes     obs.Counter
	nodeKills       obs.Counter
	nodeRestarts    obs.Counter
	serverKills     obs.Counter
	serverRestarts  obs.Counter
}

func newInjMetrics(r *obs.Registry) injMetrics {
	return injMetrics{
		msgPartitioned:  r.Counter("fault.msg_partitioned", "messages", "Messages dropped by an active network partition."),
		msgDropped:      r.Counter("fault.msg_dropped", "messages", "Messages dropped by a loss rule."),
		msgDuplicated:   r.Counter("fault.msg_duplicated", "messages", "Messages duplicated by a duplication rule."),
		msgDelayed:      r.Counter("fault.msg_delayed", "messages", "Messages given extra latency by a delay rule."),
		diskBadBlock:    r.Counter("fault.disk_bad_block", "reads", "Reads failed by a planted latent bad block."),
		diskTransient:   r.Counter("fault.disk_transient", "ops", "Disk operations failed by a transient-error rule."),
		diskLimped:      r.Counter("fault.disk_limped", "ops", "Disk operations slowed by an extra-latency rule."),
		diskBitrot:      r.Counter("fault.disk_bitrot", "blocks", "Blocks whose contents were corrupted by a flipped bit."),
		diskMisdirected: r.Counter("fault.disk_misdirected", "writes", "Writes silently redirected to the wrong block."),
		diskTorn:        r.Counter("fault.disk_torn_writes", "writes", "Unsynced writes left torn (partially applied) by a kill-9 crash."),
		diskLost:        r.Counter("fault.disk_lost_unsynced", "writes", "Unsynced writes dropped entirely by a kill-9 crash."),
		nodeCrashes:     r.Counter("fault.node_crashes", "events", "Scheduled whole-node crashes executed."),
		nodeKills:       r.Counter("fault.node_kills", "events", "Scheduled kill-9 power failures executed."),
		nodeRestarts:    r.Counter("fault.node_restarts", "events", "Scheduled node restarts executed."),
		serverKills:     r.Counter("fault.server_kills", "events", "Scheduled replica-server kill-9 power failures executed."),
		serverRestarts:  r.Counter("fault.server_restarts", "events", "Scheduled replica-server restarts executed."),
	}
}

// New creates an injector with the given seed. Two injectors with the same
// seed and configuration behave identically on identical simulations.
func New(seed int64) *Injector {
	in := &Injector{
		seed:       seed,
		stats:      stats.New(),
		rng:        rand.New(rand.NewSource(seed)),
		badBlocks:  make(map[diskBlock]bool),
		rotPending: make(map[diskBlock]bool),
		misdirects: make(map[misdirect]int),
		blockSizes: make(map[string]int),
	}
	in.m = newInjMetrics(in.stats.Registry())
	return in
}

// Seed returns the injector's seed.
func (in *Injector) Seed() int64 { return in.seed }

// Stats returns the injector's counters: faults injected by kind.
func (in *Injector) Stats() *stats.Counters { return in.stats }

// SetTracer emits an event for every injected fault (nil disables). The
// hooks read the tracer under in.mu, so installation must hold it too.
func (in *Injector) SetTracer(t *trace.Tracer) {
	in.mu.Lock()
	in.tracer = t
	in.mu.Unlock()
}

// MsgWindow injects message faults between virtual times from and to.
func (in *Injector) MsgWindow(from, to time.Duration, f MsgFaults) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.msgRules = append(in.msgRules, msgRule{window{from, to}, f})
}

// Partition drops every message between nodes a and b (both directions)
// inside the window, modeling a split interconnect.
func (in *Injector) Partition(from, to time.Duration, a, b msg.NodeID) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.partitions = append(in.partitions, partition{window{from, to}, a, b})
}

// DiskWindow injects device faults between virtual times from and to on the
// disk with the given label ("" matches all disks).
func (in *Injector) DiskWindow(from, to time.Duration, label string, f DiskFaults) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.diskRules = append(in.diskRules, diskRule{window{from, to}, label, f})
}

// BadBlock plants a latent fault: reads of block bn on the labeled disk
// fail until the block is next written (the rewrite "reallocates" it).
func (in *Injector) BadBlock(label string, bn int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.badBlocks[diskBlock{label, bn}] = true
}

// Bitrot plants silent corruption: the next read of block bn on the labeled
// disk finds a seeded bit flipped in the stored bytes. No error is returned
// by the device — only a checksum can tell. The rot applies lazily at the
// next read (not at call time) so it lands identically on every replay.
func (in *Injector) Bitrot(label string, bn int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rotPending[diskBlock{label, bn}] = true
}

// BitrotWindow rots blocks probabilistically: inside the window, every read
// of a stored block on the labeled disk ("" matches all) flips one seeded
// bit with probability prob.
func (in *Injector) BitrotWindow(from, to time.Duration, label string, prob float64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rotRules = append(in.rotRules, bitrotRule{window{from, to}, label, prob})
}

// MisdirectWrite makes the next write of fromBn on the labeled disk silently
// land on toBn instead: fromBn keeps its stale contents and toBn receives a
// block sealed for the wrong address.
func (in *Injector) MisdirectWrite(label string, fromBn, toBn int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.misdirects[misdirect{label, fromBn}] = toBn
}

// AttachNetwork installs the injector as net's fault hook.
func (in *Injector) AttachNetwork(net *msg.Network) { net.SetFault(in) }

// AttachDisk installs the injector as d's fault hook and crash hook under
// the given label.
func (in *Injector) AttachDisk(d *disk.Disk, label string) {
	in.mu.Lock()
	in.blockSizes[label] = d.Config().BlockSize
	in.mu.Unlock()
	d.SetFault(in, label)
	d.SetCrashHook(in)
}

// SetCrashModel configures the fate of unsynced writes at kill-9 crashes
// (the zero model keeps a random prefix and never tears).
func (in *Injector) SetCrashModel(m CrashModel) {
	in.mu.Lock()
	in.crashModel = m
	in.mu.Unlock()
}

// OnCrash implements disk.CrashHook: the seeded kill-9 model. A uniformly
// drawn prefix of the unsynced writes (possibly none, possibly all) had
// already reached the medium before the power went; the rest are lost,
// and with probability CrashModel.TornProb the first lost write lands torn
// at a seeded byte offset instead of vanishing cleanly.
func (in *Injector) OnCrash(now time.Duration, label string, pending []int) disk.CrashOutcome {
	in.mu.Lock()
	defer in.mu.Unlock()
	var out disk.CrashOutcome
	if len(pending) == 0 {
		return out
	}
	out.Keep = in.rng.Intn(len(pending) + 1)
	lost := len(pending) - out.Keep
	if lost == 0 {
		return out
	}
	in.m.diskLost.Add(int64(lost))
	if in.rng.Float64() < in.crashModel.TornProb {
		bs := in.blockSizes[label]
		if bs == 0 {
			bs = 1024
		}
		// Torn means strictly partial: at least one byte landed, at
		// least one byte did not.
		out.TornBytes = 1 + in.rng.Intn(bs-1)
		in.m.diskTorn.Add(1)
		in.emit(now, "fault.torn", "%s block %d first %d bytes", label, pending[out.Keep], out.TornBytes)
	}
	in.emit(now, "fault.lostwrites", "%s kept %d of %d unsynced", label, out.Keep, len(pending))
	return out
}

// Deliver implements msg.FaultHook.
func (in *Injector) Deliver(now time.Duration, from msg.NodeID, to msg.Addr, m *msg.Message) msg.Fate {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, p := range in.partitions {
		if p.contains(now) && ((p.a == from && p.b == to.Node) || (p.b == from && p.a == to.Node)) {
			in.m.msgPartitioned.Add(1)
			in.emit(now, "fault.partition", "n%d -/- %v", from, to)
			return msg.Fate{Drop: true}
		}
	}
	var fate msg.Fate
	for _, r := range in.msgRules {
		if !r.contains(now) {
			continue
		}
		// Draw in a fixed order so the consumed randomness per message is
		// schedule-independent.
		drop := in.rng.Float64() < r.f.DropProb
		dup := in.rng.Float64() < r.f.DupProb
		delay := in.rng.Float64() < r.f.DelayProb
		if drop {
			in.m.msgDropped.Add(1)
			in.emit(now, "fault.drop", "n%d -> %v %T", from, to, m.Body)
			return msg.Fate{Drop: true}
		}
		if dup {
			fate.Duplicates++
			in.m.msgDuplicated.Add(1)
			in.emit(now, "fault.dup", "n%d -> %v %T", from, to, m.Body)
		}
		if delay && r.f.DelayMax > 0 {
			d := time.Duration(in.rng.Int63n(int64(r.f.DelayMax))) + 1
			fate.ExtraDelay += d
			in.m.msgDelayed.Add(1)
			in.emit(now, "fault.delay", "n%d -> %v %T +%v", from, to, m.Body, d)
		}
	}
	return fate
}

// BeforeOp implements disk.FaultHook.
func (in *Injector) BeforeOp(now time.Duration, label string, op disk.Op, bn int) (time.Duration, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	key := diskBlock{label, bn}
	if in.badBlocks[key] {
		if op == disk.OpWrite {
			// The rewrite clears the latent fault.
			delete(in.badBlocks, key)
		} else {
			in.m.diskBadBlock.Add(1)
			in.emit(now, "fault.badblock", "%s block %d", label, bn)
			return 0, fmt.Errorf("%w: latent bad block %d on %s", ErrInjected, bn, label)
		}
	}
	var extra time.Duration
	for _, r := range in.diskRules {
		if !r.contains(now) || (r.label != "" && r.label != label) {
			continue
		}
		extra += r.f.ExtraLatency
		prob := r.f.ReadErrProb
		if op == disk.OpWrite {
			prob = r.f.WriteErrProb
		}
		if in.rng.Float64() < prob {
			in.m.diskTransient.Add(1)
			in.emit(now, "fault.diskerr", "%s block %d", label, bn)
			return extra, fmt.Errorf("%w: transient %s error on %s block %d", ErrInjected, opName(op), label, bn)
		}
	}
	if extra > 0 {
		in.m.diskLimped.Add(1)
	}
	return extra, nil
}

// CorruptBlock implements disk.Corrupter: called on every read of a stored
// block, it may flip a seeded bit in the device's own buffer — the read then
// succeeds with wrong contents. One-shot rot planted with Bitrot applies at
// the block's next read; window rules draw per read, only inside an active
// window, so the randomness consumed is schedule-independent.
func (in *Injector) CorruptBlock(now time.Duration, label string, bn int, data []byte) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	key := diskBlock{label, bn}
	rot := in.rotPending[key]
	if rot {
		delete(in.rotPending, key)
	}
	for _, r := range in.rotRules {
		if !r.contains(now) || (r.label != "" && r.label != label) {
			continue
		}
		if in.rng.Float64() < r.prob {
			rot = true
		}
	}
	if !rot {
		return false
	}
	bit := in.rng.Intn(len(data) * 8)
	data[bit/8] ^= 1 << (uint(bit) % 8)
	in.m.diskBitrot.Add(1)
	in.emit(now, "fault.bitrot", "%s block %d bit %d", label, bn, bit)
	return true
}

// RedirectWrite implements disk.Corrupter: a write of a block armed with
// MisdirectWrite silently lands on the configured target instead.
func (in *Injector) RedirectWrite(now time.Duration, label string, bn int) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	key := misdirect{label, bn}
	to, ok := in.misdirects[key]
	if !ok {
		return bn
	}
	delete(in.misdirects, key)
	in.m.diskMisdirected.Add(1)
	in.emit(now, "fault.misdirect", "%s block %d -> %d", label, bn, to)
	return to
}

func opName(op disk.Op) string {
	if op == disk.OpWrite {
		return "write"
	}
	return "read"
}

// emit records a fault event; callers hold in.mu.
func (in *Injector) emit(now time.Duration, kind, format string, args ...any) {
	if in.tracer != nil {
		in.tracer.Emitf(now, kind, format, args...)
	}
}
