package fault

import (
	"errors"
	"testing"
	"time"

	"bridge/internal/disk"
	"bridge/internal/msg"
)

func TestMsgFaultsDeterministic(t *testing.T) {
	run := func(seed int64) []bool {
		in := New(seed)
		in.MsgWindow(0, time.Hour, MsgFaults{DropProb: 0.3})
		var drops []bool
		for i := 0; i < 200; i++ {
			fate := in.Deliver(time.Duration(i)*time.Millisecond, 1, msg.Addr{Node: 2, Port: "p"}, &msg.Message{})
			drops = append(drops, fate.Drop)
		}
		return drops
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at message %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical drop sequences")
	}
	dropped := 0
	for _, d := range a {
		if d {
			dropped++
		}
	}
	if dropped == 0 || dropped == len(a) {
		t.Errorf("drop count %d of %d not plausible for p=0.3", dropped, len(a))
	}
}

func TestWindowBoundsRespected(t *testing.T) {
	in := New(1)
	in.MsgWindow(time.Second, 2*time.Second, MsgFaults{DropProb: 1})
	to := msg.Addr{Node: 2, Port: "p"}
	if in.Deliver(500*time.Millisecond, 1, to, &msg.Message{}).Drop {
		t.Error("dropped before window")
	}
	if !in.Deliver(1500*time.Millisecond, 1, to, &msg.Message{}).Drop {
		t.Error("did not drop inside window")
	}
	if in.Deliver(2500*time.Millisecond, 1, to, &msg.Message{}).Drop {
		t.Error("dropped after window")
	}
}

func TestPartitionIsBidirectionalAndScoped(t *testing.T) {
	in := New(1)
	in.Partition(0, time.Second, 1, 3)
	if !in.Deliver(0, 1, msg.Addr{Node: 3}, &msg.Message{}).Drop {
		t.Error("1->3 not dropped")
	}
	if !in.Deliver(0, 3, msg.Addr{Node: 1}, &msg.Message{}).Drop {
		t.Error("3->1 not dropped")
	}
	if in.Deliver(0, 1, msg.Addr{Node: 2}, &msg.Message{}).Drop {
		t.Error("1->2 dropped despite not being partitioned")
	}
}

func TestBadBlockClearsOnRewrite(t *testing.T) {
	in := New(1)
	in.BadBlock("d0", 7)
	if _, err := in.BeforeOp(0, "d0", disk.OpRead, 7); !errors.Is(err, ErrInjected) {
		t.Fatalf("bad block read err = %v, want ErrInjected", err)
	}
	if _, err := in.BeforeOp(0, "d0", disk.OpRead, 8); err != nil {
		t.Fatalf("healthy block read err = %v", err)
	}
	if _, err := in.BeforeOp(0, "d0", disk.OpWrite, 7); err != nil {
		t.Fatalf("rewrite err = %v", err)
	}
	if _, err := in.BeforeOp(0, "d0", disk.OpRead, 7); err != nil {
		t.Fatalf("read after rewrite err = %v, want nil", err)
	}
}

func TestDiskWindowLimpAndLabelScope(t *testing.T) {
	in := New(1)
	in.DiskWindow(0, time.Second, "d1", DiskFaults{ExtraLatency: 5 * time.Millisecond})
	if extra, err := in.BeforeOp(0, "d1", disk.OpRead, 0); err != nil || extra != 5*time.Millisecond {
		t.Errorf("limping disk: extra=%v err=%v", extra, err)
	}
	if extra, _ := in.BeforeOp(0, "d2", disk.OpRead, 0); extra != 0 {
		t.Errorf("unlabeled disk limped: %v", extra)
	}
	if extra, _ := in.BeforeOp(2*time.Second, "d1", disk.OpRead, 0); extra != 0 {
		t.Errorf("limped outside window: %v", extra)
	}
}
