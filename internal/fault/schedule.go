package fault

import (
	"fmt"
	"sort"
	"time"

	"bridge/internal/sim"
)

// EventKind is a scheduled whole-node action.
type EventKind uint8

const (
	// Crash fail-stops a node at the scheduled time: its disk fails and
	// its service ports close.
	Crash EventKind = iota + 1
	// Restart power-cycles a crashed node: the disk comes back with its
	// surviving blocks, the volume is re-mounted (and bitmap-repaired),
	// and the services restart. Metadata the node had not written through
	// before the crash is lost — online repair at the replica layer is
	// what restores full redundancy.
	Restart
	// Kill power-fails a node with kill-9 semantics: unsynced writes in
	// the disk's volatile cache are lost (a seeded prefix survives, the
	// first lost write may land torn — see CrashModel) before the ports
	// close. Requires a CrashController; falls back to Crash otherwise.
	Kill
)

func (k EventKind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Restart:
		return "restart"
	case Kill:
		return "kill"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// NodeEvent is one scheduled action on a storage node (0-based index).
type NodeEvent struct {
	At   time.Duration
	Node int
	Kind EventKind
}

// NodeController is what the schedule driver needs from the cluster;
// *core.Cluster implements it.
type NodeController interface {
	FailNode(i int)
	RestartNode(i int)
}

// CrashController is the optional power-failure side of a controller:
// CrashNode drops node i's unsynced disk writes (per the installed crash
// hook) before failing it. *core.Cluster implements it.
type CrashController interface {
	CrashNode(i int, now time.Duration)
}

// NodeSchedule adds events to the crash/restart schedule executed by Drive.
func (in *Injector) NodeSchedule(events ...NodeEvent) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.schedule = append(in.schedule, events...)
}

// Drive spawns a process that executes the node schedule at its virtual
// times, then exits. Call after the cluster is up and before Wait.
func (in *Injector) Drive(rt sim.Runtime, ctl NodeController) {
	in.mu.Lock()
	events := append([]NodeEvent(nil), in.schedule...)
	in.mu.Unlock()
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	rt.Go("fault-driver", func(p sim.Proc) {
		for _, ev := range events {
			if d := ev.At - p.Now(); d > 0 {
				p.Sleep(d)
			}
			switch ev.Kind {
			case Crash:
				in.m.nodeCrashes.Add(1)
				in.emitLocked(p.Now(), "fault.crash", "node %d", ev.Node)
				ctl.FailNode(ev.Node)
			case Restart:
				in.m.nodeRestarts.Add(1)
				in.emitLocked(p.Now(), "fault.restart", "node %d", ev.Node)
				ctl.RestartNode(ev.Node)
			case Kill:
				in.emitLocked(p.Now(), "fault.kill", "node %d", ev.Node)
				if cc, ok := ctl.(CrashController); ok {
					in.m.nodeKills.Add(1)
					cc.CrashNode(ev.Node, p.Now())
				} else {
					in.m.nodeCrashes.Add(1)
					ctl.FailNode(ev.Node)
				}
			}
		}
	})
}

// emitLocked is emit for callers that do not hold in.mu.
func (in *Injector) emitLocked(now time.Duration, kind, format string, args ...any) {
	in.mu.Lock()
	in.emit(now, kind, format, args...)
	in.mu.Unlock()
}
