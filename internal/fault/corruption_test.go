package fault_test

import (
	"bytes"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"bridge"
)

// corruptionSeed lets CI vary the chaos seed (BRIDGE_CHAOS_SEED) without a
// code change; the replay assertions hold for any seed.
func corruptionSeed() int64 {
	if s := os.Getenv("BRIDGE_CHAOS_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return v
		}
	}
	return 7
}

func mirrorPayload(i int) []byte {
	b := make([]byte, bridge.PayloadBytes)
	for j := range b {
		b[j] = byte(i*29 + j*11)
	}
	return b
}

func parityPayload(i int) []byte {
	b := make([]byte, bridge.PayloadBytes)
	for j := range b {
		b[j] = byte(i*53 + j*13)
	}
	return b
}

// runCorruptionChaos boots a 4-node cluster with the background scrubber
// enabled, writes a mirrored file and a parity-protected file, silently
// flips bits in a dozen of their on-disk blocks (plus one misdirected
// write), and then drives the full recovery pipeline: a synchronous scrub
// sweep confirms every corruption, reads come back byte-correct via
// read-repair, Resilver/Rebuild heal the copies reads do not touch, and the
// run ends with a clean scrub and a clean fsck on every node. Returns the
// virtual-time trace and the final contents for exact-replay assertions.
func runCorruptionChaos(t *testing.T, seed int64) (string, [][]byte) {
	t.Helper()
	const (
		p  = 4
		nm = 24 // mirrored blocks
		np = 18 // parity data blocks (6 stripes of 3)
	)
	inj := bridge.NewFaultInjector(seed)
	sys, err := bridge.New(bridge.Config{
		Nodes: p,
		Trace: true,
		Fault: inj,
		Scrub: &bridge.ScrubConfig{},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var trc strings.Builder
	var contents [][]byte
	err = sys.Run(func(s *bridge.Session) error {
		m, err := s.NewMirror("mf")
		if err != nil {
			return fmt.Errorf("NewMirror: %w", err)
		}
		for i := 0; i < nm; i++ {
			if err := m.Append(mirrorPayload(i)); err != nil {
				return fmt.Errorf("mirror append %d: %w", i, err)
			}
		}
		pf, err := s.NewParity("pf")
		if err != nil {
			return fmt.Errorf("NewParity: %w", err)
		}
		for i := 0; i < np; i++ {
			if err := pf.Append(parityPayload(i)); err != nil {
				return fmt.Errorf("parity append %d: %w", i, err)
			}
		}
		// Each node's data region fills sequentially from DataStart: first
		// the 12 mirror blocks the node holds (6 primary + 6 shadow,
		// interleaved in append order), then its 6 parity-file blocks (data
		// columns on nodes 0-2, the parity column on node 3). Flip bits in
		// two mirror blocks per node — offsets chosen so no logical block
		// loses both copies — and in one parity-file block per node, each
		// in a distinct stripe so reconstruction always has a full stripe.
		ds := s.Cluster().Nodes[0].FS().DataStart()
		rot := map[int][]int{
			0: {0, 3, 13}, // primary 0, shadow 7, parity data block 3 (stripe 1)
			1: {1, 6, 14}, // primary 1, shadow 12, parity data block 7 (stripe 2)
			2: {7, 2, 15}, // primary 14, shadow 5, parity data block 11 (stripe 3)
			3: {1, 8, 16}, // primary 3, shadow 18, parity column stripe 4
		}
		for node := 0; node < p; node++ {
			for _, off := range rot[node] {
				inj.Bitrot(fmt.Sprintf("disk%d", node), ds+off)
			}
		}
		// A full synchronous sweep per node: the rot is applied at the
		// first medium read, so the scrub both surfaces it and confirms it,
		// and invalidates the cached copies that were masking it.
		detected := 0
		for i := 0; i < p; i++ {
			rep, err := s.Scrub(i)
			if err != nil {
				return fmt.Errorf("scrub node %d: %w", i, err)
			}
			detected += len(rep.Errors)
		}
		if detected != 12 {
			t.Errorf("scrub confirmed %d corrupt blocks, want 12", detected)
		}
		// Every read must come back byte-correct: corrupt primary copies
		// are served from the shadow and rewritten in place (read-repair),
		// corrupt parity data blocks are served from reconstruction.
		for i := int64(0); i < nm; i++ {
			data, err := m.Read(i)
			if err != nil {
				return fmt.Errorf("mirror read %d: %w", i, err)
			}
			if !bytes.Equal(data, mirrorPayload(int(i))) {
				t.Errorf("mirror block %d wrong after bitrot", i)
			}
		}
		for i := int64(0); i < np; i++ {
			data, err := pf.Read(i)
			if err != nil {
				return fmt.Errorf("parity read %d: %w", i, err)
			}
			if !bytes.Equal(data, parityPayload(int(i))) {
				t.Errorf("parity block %d wrong after bitrot", i)
			}
		}
		// A misdirected write: rewriting mirror block 0 (same bytes) on
		// node 0 lands on the disk block that holds shadow 19 instead. The
		// victim's checksum was sealed for another address, so the next
		// sweep must catch it.
		inj.MisdirectWrite("disk0", ds+0, ds+9)
		if err := s.WriteAt("mf", 0, mirrorPayload(0)); err != nil {
			return fmt.Errorf("misdirected rewrite: %w", err)
		}
		victims := 0
		for i := 0; i < p; i++ {
			rep, err := s.Scrub(i)
			if err != nil {
				return fmt.Errorf("post-misdirect scrub node %d: %w", i, err)
			}
			victims += len(rep.Errors)
		}
		// Residual corruption at this point: the four shadow copies reads
		// never touched, plus the misdirected-write victim. (The corrupt
		// parity-column block is unreadable but not part of a chain walk.)
		if victims == 0 {
			t.Error("post-misdirect scrub found nothing; want the untouched shadows and the victim")
		}
		// Heal what reads did not: Resilver rewrites the corrupt shadow
		// copies from their primaries, Rebuild recomputes the corrupt
		// parity-column block.
		if _, err := m.Resilver(); err != nil {
			return fmt.Errorf("Resilver: %w", err)
		}
		if _, err := pf.Rebuild(); err != nil {
			return fmt.Errorf("Rebuild: %w", err)
		}
		// Zero residual mismatches: a full sweep and a full fsck of every
		// node must now come back clean.
		for i := 0; i < p; i++ {
			rep, err := s.Scrub(i)
			if err != nil {
				return fmt.Errorf("final scrub node %d: %w", i, err)
			}
			if len(rep.Errors) != 0 {
				t.Errorf("node %d: %d residual scrub errors after repair: %+v", i, len(rep.Errors), rep.Errors)
			}
			check, err := s.Fsck(i)
			if err != nil {
				return fmt.Errorf("fsck node %d: %w", i, err)
			}
			if !check.OK() {
				t.Errorf("node %d volume inconsistent after repair: %v", i, check.Problems)
			}
		}
		// And the data survives one more full pass.
		for i := int64(0); i < nm; i++ {
			data, err := m.Read(i)
			if err != nil {
				return fmt.Errorf("final mirror read %d: %w", i, err)
			}
			if !bytes.Equal(data, mirrorPayload(int(i))) {
				t.Errorf("mirror block %d wrong after full repair", i)
			}
			contents = append(contents, data)
		}
		for i := int64(0); i < np; i++ {
			data, err := pf.Read(i)
			if err != nil {
				return fmt.Errorf("final parity read %d: %w", i, err)
			}
			if !bytes.Equal(data, parityPayload(int(i))) {
				t.Errorf("parity block %d wrong after full repair", i)
			}
			contents = append(contents, data)
		}
		stats := s.Network().Stats()
		if got := stats.Get("bridge.readrepair_mirror"); got == 0 {
			t.Error("no mirror read-repairs recorded")
		}
		if got := stats.Get("bridge.readrepair_parity"); got == 0 {
			t.Error("no parity read-repairs recorded")
		}
		if stats.Get("bridge.scrub_blocks") == 0 {
			t.Error("scrub scanned no blocks")
		}
		if inj.Stats().Get("fault.disk_bitrot") != 12 {
			t.Errorf("injector applied %d bit flips, want 12", inj.Stats().Get("fault.disk_bitrot"))
		}
		if inj.Stats().Get("fault.disk_misdirected") != 1 {
			t.Errorf("injector misdirected %d writes, want 1", inj.Stats().Get("fault.disk_misdirected"))
		}
		return s.Inspect().TraceDump(&trc)
	})
	if err != nil {
		t.Fatalf("run (seed %d): %v", seed, err)
	}
	return trc.String(), contents
}

func TestCorruptionChaosRepairsAndVerifies(t *testing.T) {
	runCorruptionChaos(t, corruptionSeed())
}

func TestCorruptionChaosReplaysExactly(t *testing.T) {
	seed := corruptionSeed()
	tr1, c1 := runCorruptionChaos(t, seed)
	if t.Failed() {
		return
	}
	tr2, c2 := runCorruptionChaos(t, seed)
	if tr1 != tr2 {
		t.Error("same seed produced different traces")
	}
	if len(c1) != len(c2) {
		t.Fatalf("same seed produced %d vs %d blocks", len(c1), len(c2))
	}
	for i := range c1 {
		if !bytes.Equal(c1[i], c2[i]) {
			t.Errorf("same seed produced different block %d", i)
		}
	}
	// A different seed flips different bits, so the trace must differ.
	tr3, _ := runCorruptionChaos(t, seed+1000)
	if tr3 == tr1 {
		t.Error("different seed replayed the first run's trace exactly")
	}
}
