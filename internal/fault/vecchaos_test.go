package fault_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"bridge/internal/core"
	"bridge/internal/disk"
	"bridge/internal/fault"
	"bridge/internal/lfs"
	"bridge/internal/sim"
	"bridge/internal/trace"
)

// runVecChaos drives the vectored scatter-gather path (WriteAtN / SeqReadN
// with server read-ahead) through a seeded chaos scenario: a lossy message
// window over the batched traffic, then a node crash that batched reads
// must fail fast on rather than hang, then restart + RepairNode + a full
// batched rewrite and verification. Returns the virtual-time trace and the
// final contents for exact-replay assertions.
func runVecChaos(t *testing.T, seed int64) (string, [][]byte) {
	t.Helper()
	const (
		p     = 4
		n     = 48
		batch = 16
	)
	rt := sim.NewVirtual()
	tr := trace.New(1 << 20)
	inj := fault.New(seed)
	inj.SetTracer(tr)
	inj.MsgWindow(2*time.Second, 7*time.Second, fault.MsgFaults{
		DropProb:  0.05,
		DupProb:   0.05,
		DelayProb: 0.2,
		DelayMax:  20 * time.Millisecond,
	})
	inj.NodeSchedule(
		fault.NodeEvent{At: 30 * time.Second, Node: 2, Kind: fault.Crash},
		fault.NodeEvent{At: 40 * time.Second, Node: 2, Kind: fault.Restart},
	)
	lfsRetry := core.RetryPolicy{Attempts: 5}.WithSeed(inj.Seed(), "vecchaos.lfs")
	cl, err := core.StartCluster(rt, core.ClusterConfig{
		P:    p,
		Node: lfs.Config{DiskBlocks: 2048, Timing: disk.FixedTiming{Latency: time.Millisecond}},
		Server: core.Config{
			LFSTimeout: time.Second,
			LFSRetry:   &lfsRetry,
			Health:     &core.HealthConfig{},
			ReadAhead:  2,
		},
	})
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	cl.Net.SetTracer(tr)
	inj.AttachNetwork(cl.Net)
	for i, nd := range cl.Nodes {
		inj.AttachDisk(nd.Disk, fmt.Sprintf("disk%d", i))
	}
	inj.Drive(rt, cl)
	pay := func(version, i int) []byte {
		b := make([]byte, core.PayloadBytes)
		for j := range b {
			b[j] = byte(version*17 + i*131 + j*7)
		}
		return b
	}
	var contents [][]byte
	rt.Go("vecchaos-client", func(proc sim.Proc) {
		defer cl.Stop()
		c := cl.NewClient(proc, 0, "vecchaos")
		defer c.Close()
		c.SetTimeout(2 * time.Second)
		c.SetRetry(core.RetryPolicy{Attempts: 6}.WithSeed(inj.Seed(), "vecchaos.client"))
		// Heavy message loss can make the health monitor falsely declare a
		// node Dead mid-window; batched ops then fail fast by design. Ride
		// out such transients with bounded retries — the monitor revives
		// the node as soon as a probe gets through again.
		readBatch := func() ([][]byte, error) {
			var lastErr error
			for attempt := 0; attempt < 8; attempt++ {
				blocks, _, err := c.SeqReadN("f", batch)
				if err == nil {
					return blocks, nil
				}
				lastErr = err
				proc.Sleep(400 * time.Millisecond)
			}
			return nil, lastErr
		}
		writeBatch := func(start int, blocks [][]byte) error {
			var lastErr error
			for attempt := 0; attempt < 8; attempt++ {
				wrote, err := c.WriteAtN("f", int64(start), blocks)
				if err == nil && wrote == len(blocks) {
					return nil
				}
				// A prefix landed; retry the tail only.
				start += wrote
				blocks = blocks[wrote:]
				lastErr = err
				proc.Sleep(400 * time.Millisecond)
			}
			return lastErr
		}
		if _, err := c.Create("f"); err != nil {
			t.Errorf("Create: %v", err)
			return
		}
		// Seed the file and open it before the fault window: Open's stat
		// fan-out is not retried, but the vectored ops under test are.
		for start := 0; start < n; start += batch {
			blocks := make([][]byte, batch)
			for i := range blocks {
				blocks[i] = pay(1, start+i)
			}
			wrote, err := c.WriteAtN("f", int64(start), blocks)
			if err != nil || wrote != batch {
				t.Errorf("WriteAtN at %d: wrote %d, %v", start, wrote, err)
				return
			}
		}
		if _, err := c.Open("f"); err != nil {
			t.Errorf("Open: %v", err)
			return
		}
		if until := 2500*time.Millisecond - proc.Now(); until > 0 {
			proc.Sleep(until)
		}
		// Batched reads straight through the lossy window, through the
		// server read-ahead cache: drops and dups must be absorbed by the
		// per-node vectored retries.
		for i := 0; i < n; {
			blocks, err := readBatch()
			if err != nil {
				t.Errorf("SeqReadN at %d: %v", i, err)
				return
			}
			for _, data := range blocks {
				if !bytes.Equal(data, pay(1, i)) {
					t.Errorf("block %d corrupt under message faults", i)
					return
				}
				i++
			}
			proc.Sleep(300 * time.Millisecond)
		}
		// Batched overwrites while the window is still biting: retries
		// reuse the per-node OpID, so duplicated deliveries stay
		// idempotent and the rewrite lands exactly once.
		for start := 0; start < n; start += batch {
			blocks := make([][]byte, batch)
			for i := range blocks {
				blocks[i] = pay(2, start+i)
			}
			if err := writeBatch(start, blocks); err != nil {
				t.Errorf("fault-window WriteAtN at %d: %v", start, err)
				return
			}
			proc.Sleep(300 * time.Millisecond)
		}
		if _, err := c.Open("f"); err != nil {
			t.Errorf("reopen after overwrite: %v", err)
			return
		}
		for i := 0; i < n; {
			blocks, err := readBatch()
			if err != nil {
				t.Errorf("post-overwrite SeqReadN at %d: %v", i, err)
				return
			}
			for _, data := range blocks {
				if !bytes.Equal(data, pay(2, i)) {
					t.Errorf("block %d stale after fault-window overwrite", i)
					return
				}
				i++
			}
		}
		// Crash at 30s (long after the fault window has drained, even with
		// worst-case retry tails): a batched read spanning the dead node
		// must fail
		// (fast via the health monitor or by exhausting retries), never
		// hang the gather.
		if until := 35*time.Second - proc.Now(); until > 0 {
			proc.Sleep(until)
		}
		if _, err := c.ReadAtN("f", 0, batch); err == nil {
			t.Error("batched read across a crashed node reported success")
		}
		// Restart at 40s, then repair and rewrite everything: RepairNode
		// must flush the server read-ahead cache so none of the pre-crash
		// buffered blocks survive into the verification pass.
		if until := 45*time.Second - proc.Now(); until > 0 {
			proc.Sleep(until)
		}
		if _, err := c.RepairNode(2); err != nil {
			t.Errorf("RepairNode: %v", err)
			return
		}
		for start := 0; start < n; start += batch {
			blocks := make([][]byte, batch)
			for i := range blocks {
				blocks[i] = pay(3, start+i)
			}
			wrote, err := c.WriteAtN("f", int64(start), blocks)
			if err != nil || wrote != batch {
				t.Errorf("rewrite WriteAtN at %d: wrote %d, %v", start, wrote, err)
				return
			}
		}
		if _, err := c.Open("f"); err != nil {
			t.Errorf("reopen: %v", err)
			return
		}
		for i := 0; i < n; {
			blocks, _, err := c.SeqReadN("f", batch)
			if err != nil {
				t.Errorf("final SeqReadN at %d: %v", i, err)
				return
			}
			for _, data := range blocks {
				if !bytes.Equal(data, pay(3, i)) {
					t.Errorf("block %d corrupt after repair and rewrite", i)
					return
				}
				contents = append(contents, data)
				i++
			}
		}
		// Every node's volume must come out of the run self-consistent,
		// checked through the protocol-level fsck op.
		for i := range cl.Nodes {
			rep, err := c.Fsck(i)
			if err != nil {
				t.Errorf("node %d fsck: %v", i, err)
				return
			}
			if !rep.OK() {
				t.Errorf("node %d volume inconsistent after chaos: %v", i, rep.Problems)
			}
		}
	})
	if err := rt.Wait(); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if inj.Stats().Get("fault.msg_dropped") == 0 {
		t.Error("chaos run dropped no messages — the fault window never bit")
	}
	retries := cl.Net.Stats().Get("bridge.client_retries") + cl.Net.Stats().Get("bridge.lfs_retries")
	if retries == 0 {
		t.Error("no retransmissions — the vectored retry path never bit")
	}
	if cl.Net.Stats().Get("bridge.ra_hits") == 0 {
		t.Error("no read-ahead hits — the batched reads bypassed the cache")
	}
	var sb strings.Builder
	if _, err := tr.WriteTo(&sb); err != nil {
		t.Fatalf("trace: %v", err)
	}
	return sb.String(), contents
}

func TestVecChaosSurvivesAndVerifies(t *testing.T) {
	runVecChaos(t, 97)
}

func TestVecChaosReplaysExactly(t *testing.T) {
	tr1, c1 := runVecChaos(t, 97)
	if t.Failed() {
		return
	}
	tr2, c2 := runVecChaos(t, 97)
	if tr1 != tr2 {
		t.Error("same seed produced different traces on the vectored path")
	}
	if len(c1) != len(c2) {
		t.Fatalf("same seed produced %d vs %d blocks", len(c1), len(c2))
	}
	for i := range c1 {
		if !bytes.Equal(c1[i], c2[i]) {
			t.Errorf("same seed produced different block %d", i)
		}
	}
	tr3, _ := runVecChaos(t, 1097)
	if tr3 == tr1 {
		t.Error("different seed replayed the first run's trace exactly")
	}
}
