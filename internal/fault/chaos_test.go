package fault_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"bridge/internal/core"
	"bridge/internal/disk"
	"bridge/internal/fault"
	"bridge/internal/lfs"
	"bridge/internal/replica"
	"bridge/internal/sim"
	"bridge/internal/trace"
)

func chaosPayload(i int) []byte {
	b := make([]byte, core.PayloadBytes)
	for j := range b {
		b[j] = byte(i*131 + j*7)
	}
	return b
}

// runChaos executes one full seeded chaos scenario against a mirrored file:
// a lossy/delaying message window, a limping disk, and a node crash in the
// middle of a stream of appends, followed by restart, directory repair,
// resilvering, and full verification (contents plus a per-node EFS
// consistency check). It returns the virtual-time trace and the file's
// final contents so callers can assert exact replay.
func runChaos(t *testing.T, seed int64) (string, [][]byte) {
	t.Helper()
	const (
		p = 4
		n = 40
	)
	rt := sim.NewVirtual()
	tr := trace.New(1 << 20)
	inj := fault.New(seed)
	inj.SetTracer(tr)
	inj.MsgWindow(2*time.Second, 5*time.Second, fault.MsgFaults{
		DropProb:  0.05,
		DupProb:   0.05,
		DelayProb: 0.2,
		DelayMax:  20 * time.Millisecond,
	})
	inj.DiskWindow(3*time.Second, 6*time.Second, "disk0", fault.DiskFaults{
		ExtraLatency: 5 * time.Millisecond,
	})
	inj.NodeSchedule(
		fault.NodeEvent{At: 7 * time.Second, Node: 2, Kind: fault.Crash},
		fault.NodeEvent{At: 16 * time.Second, Node: 2, Kind: fault.Restart},
	)
	// Retry jitter seeds derive from the scenario seed, as bridge.Run does:
	// one seed determines faults and retransmission timing alike.
	lfsRetry := core.RetryPolicy{Attempts: 5}.WithSeed(inj.Seed(), "chaos.lfs")
	cl, err := core.StartCluster(rt, core.ClusterConfig{
		P:    p,
		Node: lfs.Config{DiskBlocks: 2048, Timing: disk.FixedTiming{Latency: time.Millisecond}},
		Server: core.Config{
			LFSTimeout: time.Second,
			LFSRetry:   &lfsRetry,
			Health:     &core.HealthConfig{},
		},
	})
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	cl.Net.SetTracer(tr)
	inj.AttachNetwork(cl.Net)
	for i, nd := range cl.Nodes {
		inj.AttachDisk(nd.Disk, fmt.Sprintf("disk%d", i))
	}
	inj.Drive(rt, cl)
	var contents [][]byte
	rt.Go("chaos-client", func(proc sim.Proc) {
		defer cl.Stop()
		c := cl.NewClient(proc, 0, "chaos")
		defer c.Close()
		c.SetTimeout(2 * time.Second)
		c.SetRetry(core.RetryPolicy{Attempts: 6}.WithSeed(inj.Seed(), "chaos.client"))
		m, err := replica.CreateMirror(proc, c, "f", p)
		if err != nil {
			t.Errorf("CreateMirror: %v", err)
			return
		}
		// Append through the chaos: the message window forces client and
		// server retries, and the crash at 7s forces degraded appends once
		// the monitor marks the node Dead.
		for i := 0; i < n; i++ {
			if err := m.Append(chaosPayload(i)); err != nil {
				t.Errorf("Append %d at %v: %v", i, proc.Now(), err)
				return
			}
			proc.Sleep(300 * time.Millisecond)
		}
		if !m.Degraded() {
			t.Error("mirror never degraded despite the crash")
		}
		// Let the restarted node come back and be marked Healthy again.
		if until := 20*time.Second - proc.Now(); until > 0 {
			proc.Sleep(until)
		}
		if _, err := c.RepairNode(2); err != nil {
			t.Errorf("RepairNode: %v", err)
			return
		}
		if _, err := m.Resilver(); err != nil {
			t.Errorf("Resilver: %v", err)
			return
		}
		if m.Degraded() {
			t.Error("mirror still degraded after Resilver")
		}
		// Verify every block and keep the contents for replay comparison.
		for i := int64(0); i < n; i++ {
			data, err := m.Read(i)
			if err != nil {
				t.Errorf("final Read %d: %v", i, err)
				return
			}
			if !bytes.Equal(data, chaosPayload(int(i))) {
				t.Errorf("block %d corrupt after chaos and repair", i)
				return
			}
			contents = append(contents, data)
		}
		// Every node's volume must come out of the run self-consistent,
		// checked through the protocol-level fsck op (client → server →
		// LFS), so the op path itself is exercised under chaos too.
		for i := range cl.Nodes {
			rep, err := c.Fsck(i)
			if err != nil {
				t.Errorf("node %d fsck: %v", i, err)
				return
			}
			if !rep.OK() {
				t.Errorf("node %d volume inconsistent after chaos: %v", i, rep.Problems)
			}
		}
	})
	if err := rt.Wait(); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if inj.Stats().Get("fault.msg_dropped") == 0 {
		t.Error("chaos run dropped no messages — the fault window never bit")
	}
	if cl.Net.Stats().Get("replica.overflow_blocks") == 0 {
		t.Error("no degraded appends — the crash never bit")
	}
	retries := cl.Net.Stats().Get("bridge.client_retries") + cl.Net.Stats().Get("bridge.lfs_retries")
	if retries == 0 {
		t.Error("no retransmissions — the retry (and jitter) path never bit")
	}
	var sb strings.Builder
	if _, err := tr.WriteTo(&sb); err != nil {
		t.Fatalf("trace: %v", err)
	}
	return sb.String(), contents
}

func TestChaosRunRepairsAndVerifies(t *testing.T) {
	runChaos(t, 42)
}

func TestChaosReplaysExactly(t *testing.T) {
	// Same seed: identical virtual-time trace and identical contents.
	tr1, c1 := runChaos(t, 42)
	if t.Failed() {
		return
	}
	tr2, c2 := runChaos(t, 42)
	if tr1 != tr2 {
		t.Error("same seed produced different traces")
	}
	if len(c1) != len(c2) {
		t.Fatalf("same seed produced %d vs %d blocks", len(c1), len(c2))
	}
	for i := range c1 {
		if !bytes.Equal(c1[i], c2[i]) {
			t.Errorf("same seed produced different block %d", i)
		}
	}
	// Different seed: the fault pattern (and so the trace) differs.
	tr3, _ := runChaos(t, 1042)
	if tr3 == tr1 {
		t.Error("different seed replayed the first run's trace exactly")
	}
}
