package fault

import (
	"sort"
	"time"

	"bridge/internal/sim"
)

// ServerEvent is one scheduled action on a replicated Bridge Server,
// addressed as (shard group, replica index within the group). Server -1
// resolves at fire time: a Crash/Kill targets whichever replica currently
// leads the named shard — the canonical "kill the leader mid-workload"
// chaos move, written without knowing election outcomes in advance — and
// a Restart revives that shard's most recently killed replica, so a
// schedule of alternating -1 kills and -1 restarts cycles a shard's
// leaders without naming them. Shard defaults to 0, which keeps PR 9
// single-group schedules working unchanged.
type ServerEvent struct {
	At     time.Duration
	Shard  int
	Server int
	Kind   EventKind
}

// ServerController is what the server schedule driver needs from the
// cluster; *core.Cluster implements it. Replicas address as (shard,
// replica-within-group). CrashServer has kill-9 semantics: the replica's
// volatile state (write-behind buffers, parked requests) vanishes and its
// consensus disk drops unsynced writes; RestartServer boots a fresh
// process that reloads term, log, and snapshot from the surviving
// consensus state. LeaderServer reports the named shard group's current
// ready leader, or -1.
type ServerController interface {
	CrashServer(shard, i int, now time.Duration)
	RestartServer(shard, i int)
	LeaderServer(shard int) int
}

// ServerSchedule adds events to the replica crash/restart schedule
// executed by DriveServers.
func (in *Injector) ServerSchedule(events ...ServerEvent) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.srvSchedule = append(in.srvSchedule, events...)
}

// leaderPoll is how often a Server: -1 event re-checks for a ready
// leader, and leaderWait bounds the total wait so a shard that never
// elects one cannot wedge the driver.
const (
	leaderPoll = 10 * time.Millisecond
	leaderWait = 10 * time.Second
)

// DriveServers spawns a process that executes the server schedule at its
// virtual times, then exits. Call after the cluster is up and before
// Wait. Crash and Kill both power-fail the replica (a server process has
// no graceful fail-stop distinct from kill-9; its durable state is the
// consensus disk, which applies the injector's crash model). Each shard's
// -1 kill/restart bookkeeping is independent, so interleaved schedules
// against different shards never revive the wrong group's replica.
func (in *Injector) DriveServers(rt sim.Runtime, ctl ServerController) {
	in.mu.Lock()
	events := append([]ServerEvent(nil), in.srvSchedule...)
	in.mu.Unlock()
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	rt.Go("server-fault-driver", func(p sim.Proc) {
		// Per-shard stacks of -1-killed replicas awaiting revival.
		killed := make(map[int][]int)
		for _, ev := range events {
			if d := ev.At - p.Now(); d > 0 {
				p.Sleep(d)
			}
			target := ev.Server
			switch ev.Kind {
			case Crash, Kill:
				if target < 0 {
					target = in.awaitLeader(p, ctl, ev.Shard)
					if target < 0 {
						in.emitLocked(p.Now(), "fault.server_skip", "no leader on shard %d to %s", ev.Shard, ev.Kind)
						continue
					}
					killed[ev.Shard] = append(killed[ev.Shard], target)
				}
				in.m.serverKills.Add(1)
				in.emitLocked(p.Now(), "fault.server_kill", "shard %d server %d", ev.Shard, target)
				ctl.CrashServer(ev.Shard, target, p.Now())
			case Restart:
				if target < 0 {
					stack := killed[ev.Shard]
					if len(stack) == 0 {
						in.emitLocked(p.Now(), "fault.server_skip", "no killed server on shard %d to restart", ev.Shard)
						continue
					}
					target = stack[len(stack)-1]
					killed[ev.Shard] = stack[:len(stack)-1]
				}
				in.m.serverRestarts.Add(1)
				in.emitLocked(p.Now(), "fault.server_restart", "shard %d server %d", ev.Shard, target)
				ctl.RestartServer(ev.Shard, target)
			}
		}
	})
}

// awaitLeader polls until some replica of the shard group is ready to
// serve, bounded by leaderWait.
func (in *Injector) awaitLeader(p sim.Proc, ctl ServerController, shard int) int {
	deadline := p.Now() + leaderWait
	for {
		if i := ctl.LeaderServer(shard); i >= 0 {
			return i
		}
		if p.Now() >= deadline {
			return -1
		}
		p.Sleep(leaderPoll)
	}
}
