package fault

import (
	"sort"
	"time"

	"bridge/internal/sim"
)

// ServerEvent is one scheduled action on a replicated Bridge Server
// (0-based replica index). Server -1 resolves at fire time: a Crash/Kill
// targets whichever replica currently leads — the canonical "kill the
// leader mid-workload" chaos move, written without knowing election
// outcomes in advance — and a Restart revives the most recently killed
// replica, so a schedule of alternating -1 kills and -1 restarts cycles
// leaders without naming them.
type ServerEvent struct {
	At     time.Duration
	Server int
	Kind   EventKind
}

// ServerController is what the server schedule driver needs from the
// cluster; *core.Cluster implements it. CrashServer has kill-9 semantics:
// the replica's volatile state (write-behind buffers, parked requests)
// vanishes and its consensus disk drops unsynced writes; RestartServer
// boots a fresh process that reloads term, log, and snapshot from the
// surviving consensus state.
type ServerController interface {
	CrashServer(i int, now time.Duration)
	RestartServer(i int)
	LeaderServer() int
}

// ServerSchedule adds events to the replica crash/restart schedule
// executed by DriveServers.
func (in *Injector) ServerSchedule(events ...ServerEvent) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.srvSchedule = append(in.srvSchedule, events...)
}

// leaderPoll is how often a Server: -1 event re-checks for a ready
// leader, and leaderWait bounds the total wait so a cluster that never
// elects one cannot wedge the driver.
const (
	leaderPoll = 10 * time.Millisecond
	leaderWait = 10 * time.Second
)

// DriveServers spawns a process that executes the server schedule at its
// virtual times, then exits. Call after the cluster is up and before
// Wait. Crash and Kill both power-fail the replica (a server process has
// no graceful fail-stop distinct from kill-9; its durable state is the
// consensus disk, which applies the injector's crash model).
func (in *Injector) DriveServers(rt sim.Runtime, ctl ServerController) {
	in.mu.Lock()
	events := append([]ServerEvent(nil), in.srvSchedule...)
	in.mu.Unlock()
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	rt.Go("server-fault-driver", func(p sim.Proc) {
		var killed []int // stack of -1-killed replicas awaiting revival
		for _, ev := range events {
			if d := ev.At - p.Now(); d > 0 {
				p.Sleep(d)
			}
			target := ev.Server
			switch ev.Kind {
			case Crash, Kill:
				if target < 0 {
					target = in.awaitLeader(p, ctl)
					if target < 0 {
						in.emitLocked(p.Now(), "fault.server_skip", "no leader to %s", ev.Kind)
						continue
					}
					killed = append(killed, target)
				}
				in.m.serverKills.Add(1)
				in.emitLocked(p.Now(), "fault.server_kill", "server %d", target)
				ctl.CrashServer(target, p.Now())
			case Restart:
				if target < 0 {
					if len(killed) == 0 {
						in.emitLocked(p.Now(), "fault.server_skip", "no killed server to restart")
						continue
					}
					target = killed[len(killed)-1]
					killed = killed[:len(killed)-1]
				}
				in.m.serverRestarts.Add(1)
				in.emitLocked(p.Now(), "fault.server_restart", "server %d", target)
				ctl.RestartServer(target)
			}
		}
	})
}

// awaitLeader polls until some replica is ready to serve, bounded by
// leaderWait.
func (in *Injector) awaitLeader(p sim.Proc, ctl ServerController) int {
	deadline := p.Now() + leaderWait
	for {
		if i := ctl.LeaderServer(); i >= 0 {
			return i
		}
		if p.Now() >= deadline {
			return -1
		}
		p.Sleep(leaderPoll)
	}
}
