package fault_test

import (
	"bytes"
	"fmt"
	"os"
	"testing"
	"time"

	"bridge"
	"bridge/internal/fault"
)

func obsChaosPayload(i int) []byte {
	b := make([]byte, bridge.PayloadBytes)
	for j := range b {
		b[j] = byte(i*17 + j*3)
	}
	return b
}

// runObsChaos executes a seeded chaos scenario — a lossy message window plus
// a node crash and restart mid-stream — with full observability on, and
// returns the Inspector (valid after Run, once the simulation has drained)
// together with the exported Chrome trace. Every hard path is exercised:
// client and server retries, ErrNodeDown fast-fails, degraded mirror writes,
// node repair, and resilvering.
func runObsChaos(t *testing.T, seed int64) (bridge.Inspector, string) {
	t.Helper()
	const n = 30
	inj := bridge.NewFaultInjector(seed)
	inj.MsgWindow(2*time.Second, 5*time.Second, fault.MsgFaults{
		DropProb:  0.05,
		DupProb:   0.05,
		DelayProb: 0.2,
		DelayMax:  20 * time.Millisecond,
	})
	inj.NodeSchedule(
		fault.NodeEvent{At: 7 * time.Second, Node: 2, Kind: fault.Crash},
		fault.NodeEvent{At: 16 * time.Second, Node: 2, Kind: fault.Restart},
	)
	sys, err := bridge.New(bridge.Config{
		Nodes:       4,
		DiskBlocks:  2048,
		DiskLatency: time.Millisecond,
		Health:      &bridge.HealthConfig{},
		Retry:       &bridge.RetryPolicy{Attempts: 6},
		LFSTimeout:  time.Second,
		ReadAhead:   2,
		Fault:       inj,
		Obs:         &bridge.ObsConfig{SampleEvery: 100 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var insp bridge.Inspector
	err = sys.Run(func(s *bridge.Session) error {
		insp = s.Inspect()
		s.SetTimeout(2 * time.Second)
		m, err := s.NewMirror("f")
		if err != nil {
			return fmt.Errorf("NewMirror: %w", err)
		}
		// Append through the fault window and the crash: retries, timeouts,
		// ErrNodeDown fast-fails, and degraded writes all open and close
		// spans along the way.
		for i := 0; i < n; i++ {
			if err := m.Append(obsChaosPayload(i)); err != nil {
				return fmt.Errorf("append %d at %v: %w", i, s.Now(), err)
			}
			s.Proc().Sleep(300 * time.Millisecond)
		}
		if until := 20*time.Second - s.Now(); until > 0 {
			s.Proc().Sleep(until)
		}
		if _, err := s.RepairNode(2); err != nil {
			return fmt.Errorf("RepairNode: %w", err)
		}
		if _, err := m.Resilver(); err != nil {
			return fmt.Errorf("Resilver: %w", err)
		}
		for i := int64(0); i < n; i++ {
			data, err := m.Read(i)
			if err != nil {
				return fmt.Errorf("read %d: %w", i, err)
			}
			if !bytes.Equal(data, obsChaosPayload(int(i))) {
				t.Errorf("block %d corrupted through chaos", i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("run (seed %d): %v", seed, err)
	}
	var trc bytes.Buffer
	if err := insp.WriteChromeTrace(&trc); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	return insp, trc.String()
}

// TestObsChaosSpanLifecycle proves that under retries, timeouts, node death,
// and repair, every span is closed exactly once by the time the simulation
// drains, and that failures and retransmissions are visible on the spans.
func TestObsChaosSpanLifecycle(t *testing.T) {
	insp, _ := runObsChaos(t, corruptionSeed())
	if n := insp.OpenSpans(); n != 0 {
		t.Errorf("OpenSpans = %d, want 0 after drain", n)
	}
	if n := insp.DoubleEnds(); n != 0 {
		t.Errorf("DoubleEnds = %d, want 0", n)
	}
	if n := insp.DroppedSpans(); n != 0 {
		t.Errorf("DroppedSpans = %d, want 0 (under SpanCap)", n)
	}
	errSpans, annotated := 0, 0
	for _, sp := range insp.Spans() {
		if sp.Err != "" {
			errSpans++
		}
		if len(sp.Annotations) > 0 {
			annotated++
		}
	}
	if errSpans == 0 {
		t.Error("no failed spans despite a node crash; errors should be visible on spans")
	}
	if annotated == 0 {
		t.Error("no annotated spans despite the fault window; retries should annotate")
	}
}

// TestObsReadRepairSpanLifecycle covers the remaining hard span path: a
// read that detects silent corruption and repairs it in place from the
// mirror copy must still close every span exactly once.
func TestObsReadRepairSpanLifecycle(t *testing.T) {
	inj := bridge.NewFaultInjector(corruptionSeed())
	sys, err := bridge.New(bridge.Config{
		Nodes:       4,
		DiskBlocks:  256,
		DiskLatency: time.Millisecond,
		Fault:       inj,
		Obs:         &bridge.ObsConfig{},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var insp bridge.Inspector
	err = sys.Run(func(s *bridge.Session) error {
		insp = s.Inspect()
		m, err := s.NewMirror("mf")
		if err != nil {
			return err
		}
		for i := 0; i < 8; i++ {
			if err := m.Append(obsChaosPayload(i)); err != nil {
				return fmt.Errorf("append %d: %w", i, err)
			}
		}
		// Flip a bit in the first primary copy on node 0's medium, then
		// scrub to confirm it (invalidating the cached copy that masks it).
		ds := s.Cluster().Nodes[0].FS().DataStart()
		inj.Bitrot("disk0", ds)
		if _, err := s.Scrub(0); err != nil {
			return fmt.Errorf("scrub: %w", err)
		}
		for i := int64(0); i < 8; i++ {
			data, err := m.Read(i)
			if err != nil {
				return fmt.Errorf("read %d: %w", i, err)
			}
			if !bytes.Equal(data, obsChaosPayload(int(i))) {
				t.Errorf("block %d wrong after read-repair", i)
			}
		}
		if got := s.Metrics().Counter("bridge.readrepair_mirror"); got == 0 {
			t.Error("no mirror read-repair recorded; the corrupt read did not take the repair path")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if n := insp.OpenSpans(); n != 0 {
		t.Errorf("OpenSpans = %d, want 0 after read-repair run", n)
	}
	if n := insp.DoubleEnds(); n != 0 {
		t.Errorf("DoubleEnds = %d, want 0", n)
	}
}

// TestObsChaosTraceReplaysExactly requires the Chrome trace of a full chaos
// run to be byte-identical across same-seed runs. When BRIDGE_TRACE_OUT is
// set the first run's trace is written there (the CI artifact).
func TestObsChaosTraceReplaysExactly(t *testing.T) {
	seed := corruptionSeed()
	_, tr1 := runObsChaos(t, seed)
	if t.Failed() {
		return
	}
	if out := os.Getenv("BRIDGE_TRACE_OUT"); out != "" {
		if err := os.WriteFile(out, []byte(tr1), 0o644); err != nil {
			t.Fatalf("write %s: %v", out, err)
		}
	}
	_, tr2 := runObsChaos(t, seed)
	if tr1 != tr2 {
		t.Error("same seed produced different Chrome traces")
	}
	_, tr3 := runObsChaos(t, seed+1000)
	if tr3 == tr1 {
		t.Error("different seed replayed the first trace exactly")
	}
}
