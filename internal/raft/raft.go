package raft

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"bridge/internal/sim"
)

// Role is a node's consensus role.
type Role int

const (
	Follower Role = iota
	Candidate
	Leader
)

func (r Role) String() string {
	switch r {
	case Follower:
		return "follower"
	case Candidate:
		return "candidate"
	case Leader:
		return "leader"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// Config parameterizes a Node.
type Config struct {
	// ID is this node's index; Peers lists every member (including ID).
	ID    int
	Peers []int
	// Seed drives the jittered election timeouts. Derive it per node
	// (core.DeriveSeed) so replicas never tie.
	Seed int64
	// HeartbeatEvery is the leader's append/heartbeat cadence.
	// Default 45ms.
	HeartbeatEvery time.Duration
	// ElectionMin/ElectionMax bound the randomized election timeout.
	// Defaults 150ms/300ms. ElectionMin is also the lease extension per
	// acked heartbeat, so it must stay below the time a majority needs
	// to elect a rival.
	ElectionMin time.Duration
	ElectionMax time.Duration
	// MaxAppend bounds entries per AppendReq. Default 64.
	MaxAppend int
	// Store persists term, vote, snapshot, and log. Required.
	Store Store
}

func (c *Config) applyDefaults() {
	if c.HeartbeatEvery == 0 {
		c.HeartbeatEvery = 45 * time.Millisecond
	}
	if c.ElectionMin == 0 {
		c.ElectionMin = 150 * time.Millisecond
	}
	if c.ElectionMax == 0 {
		c.ElectionMax = 2 * c.ElectionMin
	}
	if c.MaxAppend == 0 {
		c.MaxAppend = 64
	}
}

// Outbound is a consensus message to hand to the transport.
type Outbound struct {
	To   int
	Msg  any
	Size int
}

// Status is a snapshot of a node's consensus state, safe to read from
// any process.
type Status struct {
	ID        int
	Term      uint64
	Role      Role
	Leader    int // -1 when unknown
	Commit    uint64
	LastIndex uint64
	SnapIndex uint64
}

// Tallies count consensus events since the node started; the owner diffs
// them into its metrics registry.
type Tallies struct {
	Elections     int64 // elections this node started
	LeaderWins    int64 // times this node won an election
	StepDowns     int64 // leaderships lost to a higher term or lost quorum
	VotesGranted  int64
	Committed     int64 // entries this node delivered to its applier
	SnapInstalls  int64 // snapshots installed from a leader
	AppendsSent   int64 // AppendReq messages queued (entries and heartbeats)
	AppendsRecvOK int64 // AppendReq accepted from the leader
}

// Install is a snapshot delivered by a leader; the owner must reset its
// state machine to Data before applying entries past Index.
type Install struct {
	Index uint64
	Data  []byte
}

// Node is one consensus participant. It is passive: the owning process
// calls Tick when Deadline passes, Step for each peer message, Propose to
// append, and then Flush/TakeCommitted to persist, transmit, and apply.
// All methods are mutex-guarded so other processes may read Status while
// the owner runs, but only one process may drive the node.
type Node struct {
	mu  sync.Mutex
	cfg Config
	rng *rand.Rand

	// Persistent state (mirrored to cfg.Store by Flush when dirty).
	term      uint64
	votedFor  int
	snapIndex uint64
	snapTerm  uint64
	snapshot  []byte
	log       []Entry // log[0].Index == snapIndex+1

	// Volatile state.
	role      Role
	leader    int
	commit    uint64
	delivered uint64 // last index handed out by TakeCommitted
	votes     map[int]bool
	next      map[int]uint64
	match     map[int]uint64
	acked     map[int]time.Duration // latest echoed SentAt per peer
	noop      uint64                // this term's barrier entry (leader)
	electAt   time.Duration         // election deadline
	beatAt    time.Duration         // next heartbeat (leader)
	electedAt time.Duration

	dirty     bool
	out       []Outbound
	installed *Install
	tallies   Tallies
}

// New creates a node. Call Load before driving it.
func New(cfg Config) *Node {
	cfg.applyDefaults()
	if cfg.Store == nil {
		panic("raft: Config.Store is required")
	}
	n := &Node{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		votedFor: -1,
		leader:   -1,
		votes:    make(map[int]bool),
		next:     make(map[int]uint64),
		match:    make(map[int]uint64),
		acked:    make(map[int]time.Duration),
	}
	return n
}

// Load recovers persistent state from the store and arms the election
// timer. It returns the recovered snapshot (nil when none) so the owner
// can reset its state machine; entries past the snapshot re-deliver
// through TakeCommitted as the commit index advances.
func (n *Node) Load(p sim.Proc, now time.Duration) ([]byte, error) {
	st, ok, err := n.cfg.Store.Load(p)
	n.mu.Lock()
	defer n.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if ok {
		n.term = st.Term
		n.votedFor = st.VotedFor
		n.snapIndex = st.SnapIndex
		n.snapTerm = st.SnapTerm
		n.snapshot = st.Snapshot
		n.log = st.Entries
	}
	n.commit = n.snapIndex
	n.delivered = n.snapIndex
	n.resetElection(now)
	return n.snapshot, nil
}

// Deadline is the next time the owner must call Tick.
func (n *Node) Deadline() time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role == Leader {
		return n.beatAt
	}
	return n.electAt
}

// Status returns a read-only snapshot of the node's state.
func (n *Node) Status() Status {
	n.mu.Lock()
	defer n.mu.Unlock()
	return Status{
		ID:        n.cfg.ID,
		Term:      n.term,
		Role:      n.role,
		Leader:    n.leader,
		Commit:    n.commit,
		LastIndex: n.lastIndex(),
		SnapIndex: n.snapIndex,
	}
}

// Tallies returns the running event counts.
func (n *Node) Tallies() Tallies {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.tallies
}

// LeaderHint is the node's best guess at the current leader (-1 unknown).
func (n *Node) LeaderHint() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.leader
}

// ReadyToLead reports whether this node is a leader whose no-op barrier
// has committed — the point after which it has applied every mutation
// previous terms acknowledged, and may serve.
func (n *Node) ReadyToLead() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role == Leader && n.noop > 0 && n.commit >= n.noop
}

// LeaseValid reports whether a majority acked heartbeats recently enough
// that no rival can have been elected by now: the k-th freshest echoed
// send time (k = majority, counting this node as fresh) plus ElectionMin
// is still in the future. Gates reads and effect execution on the leader.
func (n *Node) LeaseValid(now time.Duration) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role == Leader && now < n.leaseExpiry(now)
}

// leaseExpiry computes the lease end. Callers hold n.mu.
func (n *Node) leaseExpiry(now time.Duration) time.Duration {
	times := make([]time.Duration, 0, len(n.cfg.Peers))
	for _, id := range n.cfg.Peers {
		if id == n.cfg.ID {
			times = append(times, now)
			continue
		}
		if t, ok := n.acked[id]; ok {
			times = append(times, t)
		} else {
			times = append(times, -1)
		}
	}
	sort.Slice(times, func(i, j int) bool { return times[i] > times[j] })
	base := times[n.majority()-1]
	if base < 0 {
		return 0
	}
	return base + n.cfg.ElectionMin
}

func (n *Node) majority() int { return len(n.cfg.Peers)/2 + 1 }

func (n *Node) lastIndex() uint64 {
	if len(n.log) == 0 {
		return n.snapIndex
	}
	return n.log[len(n.log)-1].Index
}

// termAt returns the term of index i, or 0 when i is compacted away.
// Callers hold n.mu.
func (n *Node) termAt(i uint64) uint64 {
	if i == n.snapIndex {
		return n.snapTerm
	}
	if i > n.snapIndex && i <= n.lastIndex() {
		return n.log[i-n.snapIndex-1].Term
	}
	return 0
}

func (n *Node) resetElection(now time.Duration) {
	span := n.cfg.ElectionMax - n.cfg.ElectionMin
	jitter := time.Duration(0)
	if span > 0 {
		jitter = time.Duration(n.rng.Int63n(int64(span)))
	}
	n.electAt = now + n.cfg.ElectionMin + jitter
}

// Tick fires timers: election timeout for followers and candidates,
// heartbeat (and quorum check) for leaders.
func (n *Node) Tick(now time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role == Leader {
		// Check quorum: a leader that cannot refresh its lease for a
		// whole election span has lost contact with a majority —
		// partitioned away — and must stop acting.
		deadline := n.leaseExpiry(now)
		if deadline < n.electedAt+n.cfg.ElectionMin {
			deadline = n.electedAt + n.cfg.ElectionMin
		}
		if now > deadline+n.cfg.ElectionMax {
			n.stepDown(now)
			return
		}
		if now >= n.beatAt {
			n.broadcastAppend(now)
			n.beatAt = now + n.cfg.HeartbeatEvery
		}
		return
	}
	if now >= n.electAt {
		n.startElection(now)
	}
}

// stepDown reverts a leader or candidate to follower. Callers hold n.mu.
func (n *Node) stepDown(now time.Duration) {
	if n.role == Leader {
		n.tallies.StepDowns++
	}
	n.role = Follower
	n.leader = -1
	n.resetElection(now)
}

func (n *Node) startElection(now time.Duration) {
	n.term++
	n.role = Candidate
	n.votedFor = n.cfg.ID
	n.leader = -1
	n.votes = map[int]bool{n.cfg.ID: true}
	n.dirty = true
	n.resetElection(now)
	n.tallies.Elections++
	if len(n.cfg.Peers) == 1 {
		n.becomeLeader(now)
		return
	}
	req := VoteReq{Term: n.term, Candidate: n.cfg.ID, LastIndex: n.lastIndex(), LastTerm: n.termAt(n.lastIndex())}
	for _, id := range n.cfg.Peers {
		if id != n.cfg.ID {
			n.send(id, req)
		}
	}
}

func (n *Node) becomeLeader(now time.Duration) {
	n.role = Leader
	n.leader = n.cfg.ID
	n.electedAt = now
	n.acked = make(map[int]time.Duration)
	last := n.lastIndex()
	for _, id := range n.cfg.Peers {
		n.next[id] = last + 1
		n.match[id] = 0
	}
	n.tallies.LeaderWins++
	// The no-op barrier: committing an entry of the new term is the only
	// way to learn the true commit frontier of earlier terms.
	n.appendLocal(nil)
	n.noop = n.lastIndex()
	n.advanceCommit() // a single-node cluster commits immediately
	n.broadcastAppend(now)
	n.beatAt = now + n.cfg.HeartbeatEvery
}

// appendLocal appends one entry to the leader's log. Callers hold n.mu.
func (n *Node) appendLocal(data []byte) Entry {
	e := Entry{Index: n.lastIndex() + 1, Term: n.term, Data: data}
	n.log = append(n.log, e)
	n.match[n.cfg.ID] = e.Index
	n.dirty = true
	return e
}

// Propose appends data to the replicated log. It returns the entry's
// (index, term) — the proposal has committed once an entry with exactly
// that index and term is delivered by TakeCommitted — or ok=false when
// this node is not the leader.
func (n *Node) Propose(data []byte, now time.Duration) (index, term uint64, ok bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role != Leader {
		return 0, 0, false
	}
	e := n.appendLocal(data)
	if len(n.cfg.Peers) == 1 {
		n.advanceCommit()
	} else {
		n.broadcastAppend(now)
		n.beatAt = now + n.cfg.HeartbeatEvery
	}
	return e.Index, e.Term, true
}

// broadcastAppend queues an AppendReq (or SnapReq for compacted-away
// followers) to every peer. Callers hold n.mu.
func (n *Node) broadcastAppend(now time.Duration) {
	for _, id := range n.cfg.Peers {
		if id != n.cfg.ID {
			n.sendAppend(id, now)
		}
	}
}

// sendAppend queues replication traffic for one peer. Callers hold n.mu.
func (n *Node) sendAppend(to int, now time.Duration) {
	ni := n.next[to]
	if ni <= n.snapIndex {
		n.send(to, SnapReq{Term: n.term, Leader: n.cfg.ID, Index: n.snapIndex, SnapTerm: n.snapTerm, Data: n.snapshot})
		return
	}
	prev := ni - 1
	var ents []Entry
	if ni <= n.lastIndex() {
		from := int(ni - n.snapIndex - 1)
		end := from + n.cfg.MaxAppend
		if end > len(n.log) {
			end = len(n.log)
		}
		ents = append([]Entry(nil), n.log[from:end]...)
	}
	n.tallies.AppendsSent++
	n.send(to, AppendReq{
		Term: n.term, Leader: n.cfg.ID,
		PrevIndex: prev, PrevTerm: n.termAt(prev),
		Entries: ents, Commit: n.commit, SentAt: now,
	})
}

func (n *Node) send(to int, body any) {
	n.out = append(n.out, Outbound{To: to, Msg: body, Size: WireSize(body)})
}

// Step feeds one peer message into the node.
func (n *Node) Step(body any, now time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	switch b := body.(type) {
	case VoteReq:
		n.maybeAdvanceTerm(b.Term, now)
		if b.Term < n.term {
			n.send(b.Candidate, VoteResp{Term: n.term, From: n.cfg.ID, Granted: false})
			return
		}
		last := n.lastIndex()
		upToDate := b.LastTerm > n.termAt(last) || (b.LastTerm == n.termAt(last) && b.LastIndex >= last)
		grant := n.role == Follower && (n.votedFor == -1 || n.votedFor == b.Candidate) && upToDate
		if grant {
			n.votedFor = b.Candidate
			n.dirty = true
			n.resetElection(now)
			n.tallies.VotesGranted++
		}
		n.send(b.Candidate, VoteResp{Term: n.term, From: n.cfg.ID, Granted: grant})
	case VoteResp:
		n.maybeAdvanceTerm(b.Term, now)
		if n.role != Candidate || b.Term != n.term || !b.Granted {
			return
		}
		n.votes[b.From] = true
		if len(n.votes) >= n.majority() {
			n.becomeLeader(now)
		}
	case AppendReq:
		n.stepAppend(b, now)
	case AppendResp:
		n.maybeAdvanceTerm(b.Term, now)
		if n.role != Leader || b.Term != n.term {
			return
		}
		if b.SentAt > n.acked[b.From] {
			n.acked[b.From] = b.SentAt
		}
		if b.Ok {
			if b.MatchIndex > n.match[b.From] {
				n.match[b.From] = b.MatchIndex
			}
			if ni := b.MatchIndex + 1; ni > n.next[b.From] {
				n.next[b.From] = ni
			}
			n.advanceCommit()
			if n.next[b.From] <= n.lastIndex() {
				n.sendAppend(b.From, now)
			}
			return
		}
		// Consistency miss: back off to the follower's hint and retry.
		ni := n.next[b.From] - 1
		if hint := b.MatchIndex + 1; hint < ni {
			ni = hint
		}
		if ni < 1 {
			ni = 1
		}
		n.next[b.From] = ni
		n.sendAppend(b.From, now)
	case SnapReq:
		n.maybeAdvanceTerm(b.Term, now)
		if b.Term < n.term {
			n.send(b.Leader, SnapResp{Term: n.term, From: n.cfg.ID, MatchIndex: n.snapIndex})
			return
		}
		n.role = Follower
		n.leader = b.Leader
		n.resetElection(now)
		if b.Index > n.snapIndex {
			n.installSnapshot(b)
		}
		n.send(b.Leader, SnapResp{Term: n.term, From: n.cfg.ID, MatchIndex: n.snapIndex})
	case SnapResp:
		n.maybeAdvanceTerm(b.Term, now)
		if n.role != Leader || b.Term != n.term {
			return
		}
		if b.MatchIndex > n.match[b.From] {
			n.match[b.From] = b.MatchIndex
		}
		if ni := b.MatchIndex + 1; ni > n.next[b.From] {
			n.next[b.From] = ni
		}
		if n.next[b.From] <= n.lastIndex() {
			n.sendAppend(b.From, now)
		}
	}
}

// maybeAdvanceTerm adopts a higher term seen in any message. Callers
// hold n.mu.
func (n *Node) maybeAdvanceTerm(term uint64, now time.Duration) {
	if term <= n.term {
		return
	}
	n.term = term
	n.votedFor = -1
	n.dirty = true
	n.stepDown(now)
}

func (n *Node) stepAppend(b AppendReq, now time.Duration) {
	n.maybeAdvanceTerm(b.Term, now)
	if b.Term < n.term {
		n.send(b.Leader, AppendResp{Term: n.term, From: n.cfg.ID, Ok: false, MatchIndex: n.lastIndex(), SentAt: b.SentAt})
		return
	}
	if n.role != Follower {
		n.stepDown(now)
	}
	n.role = Follower
	n.leader = b.Leader
	n.resetElection(now)
	if b.PrevIndex > n.lastIndex() {
		n.send(b.Leader, AppendResp{Term: n.term, From: n.cfg.ID, Ok: false, MatchIndex: n.lastIndex(), SentAt: b.SentAt})
		return
	}
	if b.PrevIndex > n.snapIndex && n.termAt(b.PrevIndex) != b.PrevTerm {
		// Conflict at the consistency point: drop it and everything after.
		n.log = n.log[:b.PrevIndex-n.snapIndex-1]
		n.dirty = true
		n.send(b.Leader, AppendResp{Term: n.term, From: n.cfg.ID, Ok: false, MatchIndex: n.lastIndex(), SentAt: b.SentAt})
		return
	}
	for _, e := range b.Entries {
		if e.Index <= n.snapIndex {
			continue
		}
		if e.Index <= n.lastIndex() {
			if n.termAt(e.Index) == e.Term {
				continue
			}
			n.log = n.log[:e.Index-n.snapIndex-1]
		}
		n.log = append(n.log, e)
		n.dirty = true
	}
	m := b.PrevIndex + uint64(len(b.Entries))
	if m < n.lastIndex() && len(b.Entries) == 0 {
		// Pure heartbeat: everything we have is still unverified past
		// PrevIndex, so only PrevIndex is confirmed matched.
		m = b.PrevIndex
	}
	if c := min64(b.Commit, m); c > n.commit {
		n.commit = c
	}
	n.tallies.AppendsRecvOK++
	n.send(b.Leader, AppendResp{Term: n.term, From: n.cfg.ID, Ok: true, MatchIndex: m, SentAt: b.SentAt})
}

// installSnapshot adopts a leader snapshot. Callers hold n.mu.
func (n *Node) installSnapshot(b SnapReq) {
	if b.Index < n.lastIndex() && n.termAt(b.Index) == b.SnapTerm {
		// The snapshot is a prefix of our log: keep the suffix.
		n.log = append([]Entry(nil), n.log[b.Index-n.snapIndex:]...)
	} else {
		n.log = nil
	}
	n.snapIndex = b.Index
	n.snapTerm = b.SnapTerm
	n.snapshot = b.Data
	if n.commit < b.Index {
		n.commit = b.Index
	}
	if n.delivered < b.Index {
		n.delivered = b.Index
	}
	n.installed = &Install{Index: b.Index, Data: b.Data}
	n.dirty = true
	n.tallies.SnapInstalls++
}

// advanceCommit moves the commit index over majority-replicated entries
// of the current term. Callers hold n.mu.
func (n *Node) advanceCommit() {
	for idx := n.lastIndex(); idx > n.commit; idx-- {
		if n.termAt(idx) != n.term {
			break
		}
		count := 0
		for _, id := range n.cfg.Peers {
			if n.match[id] >= idx {
				count++
			}
		}
		if count >= n.majority() {
			n.commit = idx
			break
		}
	}
}

// Flush persists dirty state (before any message promising it can leave)
// and returns the queued outbound messages. Call after every Tick, Step,
// Propose, or Compact.
func (n *Node) Flush(p sim.Proc) ([]Outbound, error) {
	n.mu.Lock()
	dirty := n.dirty
	n.dirty = false
	var st State
	if dirty {
		st = State{
			Term:      n.term,
			VotedFor:  n.votedFor,
			SnapIndex: n.snapIndex,
			SnapTerm:  n.snapTerm,
			Snapshot:  n.snapshot,
			Entries:   append([]Entry(nil), n.log...),
		}
	}
	n.mu.Unlock()
	if dirty {
		if err := n.cfg.Store.Save(p, st); err != nil {
			return nil, err
		}
	}
	n.mu.Lock()
	out := n.out
	n.out = nil
	n.mu.Unlock()
	return out, nil
}

// TakeCommitted returns the newly committed entries since the last call,
// in log order. The owner applies them to its state machine.
func (n *Node) TakeCommitted() []Entry {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.delivered >= n.commit {
		return nil
	}
	from := int(n.delivered - n.snapIndex)
	to := int(n.commit - n.snapIndex)
	if from < 0 || to > len(n.log) {
		// A snapshot superseded part of the range; deliver what the log
		// still holds (the snapshot install event carried the rest).
		from = 0
		to = int(n.commit - n.snapIndex)
		if to > len(n.log) {
			to = len(n.log)
		}
	}
	ents := append([]Entry(nil), n.log[from:to]...)
	n.delivered = n.commit
	n.tallies.Committed += int64(len(ents))
	return ents
}

// CommittedSince returns copies of the committed entries with index in
// (from, commit], clipped to what the retained log still holds. A fresh
// leader uses it to re-execute the side effects of entries a dead
// predecessor may have committed but never acted on.
func (n *Node) CommittedSince(from uint64) []Entry {
	n.mu.Lock()
	defer n.mu.Unlock()
	lo := from
	if lo < n.snapIndex {
		lo = n.snapIndex
	}
	var out []Entry
	for _, e := range n.log {
		if e.Index > lo && e.Index <= n.commit {
			out = append(out, e)
		}
	}
	return out
}

// TakeInstalled returns a pending snapshot-install event, if any.
func (n *Node) TakeInstalled() *Install {
	n.mu.Lock()
	defer n.mu.Unlock()
	ev := n.installed
	n.installed = nil
	return ev
}

// Compact discards the log through index, which the owner has applied
// and serialized into snap. Persisted on the next Flush.
func (n *Node) Compact(index uint64, snap []byte) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if index <= n.snapIndex || index > n.lastIndex() || index > n.commit {
		return
	}
	term := n.termAt(index)
	n.log = append([]Entry(nil), n.log[index-n.snapIndex:]...)
	n.snapIndex = index
	n.snapTerm = term
	n.snapshot = snap
	n.dirty = true
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
