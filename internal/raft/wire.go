// Package raft replicates a state machine behind a Raft-style log, sized
// for the deterministic virtual-time simulation: a passive Node holds the
// consensus state and is driven by its owning server process (Tick on
// timer expiry, Step on every peer message), election timeouts are drawn
// from a seeded generator so whole runs replay byte-identically, and the
// persistent state — term, vote, snapshot, log suffix — rides the PR 6
// disk layer so a killed replica recovers exactly what it promised.
//
// The shape follows the Raft paper (Ongaro & Ousterhout, 2014): leader
// election with randomized timeouts, AppendEntries consistency checking
// with conflict back-off, commit advancement restricted to current-term
// entries via a no-op barrier, InstallSnapshot for new or lagging
// replicas, and a heartbeat-ack leader lease for local reads.
package raft

import "time"

// Entry is one replicated log record. Data is opaque to the raft layer;
// a nil Data is the no-op barrier a fresh leader commits to learn the
// durable frontier of previous terms.
type Entry struct {
	Index uint64
	Term  uint64
	Data  []byte
}

// VoteReq solicits a vote for Candidate in Term. LastIndex/LastTerm
// position the candidate's log for the up-to-date check.
type VoteReq struct {
	Term      uint64
	Candidate int
	LastIndex uint64
	LastTerm  uint64
}

// VoteResp answers a VoteReq. Granted is only meaningful when Term
// matches the candidate's current term.
type VoteResp struct {
	Term    uint64
	From    int
	Granted bool
}

// AppendReq replicates Entries after (PrevIndex, PrevTerm) and doubles as
// the heartbeat when Entries is empty. SentAt is the leader's send time,
// echoed back so acks renew the leader lease without clock coupling.
type AppendReq struct {
	Term      uint64
	Leader    int
	PrevIndex uint64
	PrevTerm  uint64
	Entries   []Entry
	Commit    uint64
	SentAt    time.Duration
}

// AppendResp acknowledges an AppendReq. On success MatchIndex is the last
// index known replicated on From; on failure it hints the follower's log
// end so the leader can back off in one round instead of one per entry.
type AppendResp struct {
	Term       uint64
	From       int
	Ok         bool
	MatchIndex uint64
	SentAt     time.Duration
}

// SnapReq installs a state-machine snapshot covering the log through
// Index (whose term is SnapTerm) on a follower too far behind the
// leader's compacted log.
type SnapReq struct {
	Term     uint64
	Leader   int
	Index    uint64
	SnapTerm uint64
	Data     []byte
}

// SnapResp acknowledges a SnapReq; MatchIndex is the follower's snapshot
// frontier afterwards.
type SnapResp struct {
	Term       uint64
	From       int
	MatchIndex uint64
}

// WireSize estimates a message's bytes on the wire for the transport's
// latency model.
func WireSize(body any) int {
	switch b := body.(type) {
	case VoteReq:
		return 40
	case VoteResp:
		return 24
	case AppendReq:
		n := 64
		for _, e := range b.Entries {
			n += 24 + len(e.Data)
		}
		return n
	case AppendResp:
		return 40
	case SnapReq:
		return 48 + len(b.Data)
	case SnapResp:
		return 32
	default:
		return 24
	}
}
