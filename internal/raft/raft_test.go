package raft

import (
	"fmt"
	"testing"
	"time"

	"bridge/internal/disk"
	"bridge/internal/sim"
)

// fakeProc satisfies sim.Proc for stores that never touch the runtime
// (MemStore). Tests that persist through a real disk use sim.NewVirtual.
type fakeProc struct{ now *time.Duration }

func (f fakeProc) Name() string        { return "raft-test" }
func (f fakeProc) Now() time.Duration  { return *f.now }
func (f fakeProc) Sleep(time.Duration) {}
func (f fakeProc) Go(string, func(sim.Proc)) {
	panic("raft-test: fakeProc.Go")
}
func (f fakeProc) Runtime() sim.Runtime { return nil }

// harness wires N nodes through in-memory inboxes with a hand-cranked
// clock, delivering in node order each round so runs are deterministic.
type harness struct {
	t     *testing.T
	now   time.Duration
	ids   []int
	nodes map[int]*Node
	inbox map[int][]any
	down  map[int]bool
	cut   map[[2]int]bool // blocked directed links
}

func newHarness(t *testing.T, n int) *harness {
	h := &harness{
		t:     t,
		nodes: make(map[int]*Node),
		inbox: make(map[int][]any),
		down:  make(map[int]bool),
		cut:   make(map[[2]int]bool),
	}
	for i := 0; i < n; i++ {
		h.ids = append(h.ids, i)
	}
	for _, id := range h.ids {
		h.addNode(id, &MemStore{})
	}
	return h
}

func (h *harness) addNode(id int, st Store) {
	nd := New(Config{ID: id, Peers: append([]int(nil), h.ids...), Seed: int64(1000 + id), Store: st})
	if _, err := nd.Load(fakeProc{&h.now}, h.now); err != nil {
		h.t.Fatalf("load node %d: %v", id, err)
	}
	h.nodes[id] = nd
}

// step runs one round: tick due timers, flush, route, deliver.
func (h *harness) step() {
	for _, id := range h.ids {
		if h.down[id] {
			continue
		}
		nd := h.nodes[id]
		if h.now >= nd.Deadline() {
			nd.Tick(h.now)
		}
		for _, m := range h.inbox[id] {
			nd.Step(m, h.now)
		}
		h.inbox[id] = nil
		out, err := nd.Flush(fakeProc{&h.now})
		if err != nil {
			h.t.Fatalf("flush node %d: %v", id, err)
		}
		for _, o := range out {
			if h.down[o.To] || h.cut[[2]int{id, o.To}] {
				continue
			}
			h.inbox[o.To] = append(h.inbox[o.To], o.Msg)
		}
	}
	h.now += 5 * time.Millisecond
}

func (h *harness) run(rounds int) {
	for i := 0; i < rounds; i++ {
		h.step()
	}
}

// leader returns the unique live ReadyToLead node, or -1.
func (h *harness) leader() int {
	found := -1
	for _, id := range h.ids {
		if !h.down[id] && h.nodes[id].ReadyToLead() {
			if found >= 0 {
				h.t.Fatalf("two ready leaders: %d and %d", found, id)
			}
			found = id
		}
	}
	return found
}

func (h *harness) waitLeader(rounds int) int {
	for i := 0; i < rounds; i++ {
		if l := h.leader(); l >= 0 {
			return l
		}
		h.step()
	}
	h.t.Fatalf("no leader after %d rounds", rounds)
	return -1
}

func TestElectionConverges(t *testing.T) {
	h := newHarness(t, 3)
	lead := h.waitLeader(400)
	st := h.nodes[lead].Status()
	if st.Role != Leader {
		t.Fatalf("node %d: role %v", lead, st.Role)
	}
	h.run(40)
	for _, id := range h.ids {
		s := h.nodes[id].Status()
		if s.Term != st.Term {
			t.Fatalf("node %d term %d, leader term %d", id, s.Term, st.Term)
		}
		if id != lead && s.Role != Follower {
			t.Fatalf("node %d: role %v, want follower", id, s.Role)
		}
		if s.Leader != lead {
			t.Fatalf("node %d sees leader %d, want %d", id, s.Leader, lead)
		}
	}
	if !h.nodes[lead].LeaseValid(h.now) {
		t.Fatal("settled leader has no valid lease")
	}
}

// collect drains TakeCommitted on every node into per-node logs.
func collect(h *harness, got map[int][]string) {
	for _, id := range h.ids {
		for _, e := range h.nodes[id].TakeCommitted() {
			if e.Data != nil {
				got[id] = append(got[id], string(e.Data))
			}
		}
	}
}

func TestReplicationDeliversEverywhere(t *testing.T) {
	h := newHarness(t, 3)
	lead := h.waitLeader(400)
	got := map[int][]string{}
	for i := 0; i < 5; i++ {
		if _, _, ok := h.nodes[lead].Propose([]byte(fmt.Sprintf("op%d", i)), h.now); !ok {
			t.Fatalf("propose %d refused", i)
		}
		h.run(4)
		collect(h, got)
	}
	h.run(40)
	collect(h, got)
	want := "[op0 op1 op2 op3 op4]"
	for _, id := range h.ids {
		if s := fmt.Sprint(got[id]); s != want {
			t.Fatalf("node %d applied %s, want %s", id, s, want)
		}
	}
}

func TestLeaderFailoverKeepsCommitted(t *testing.T) {
	h := newHarness(t, 3)
	lead := h.waitLeader(400)
	got := map[int][]string{}
	h.nodes[lead].Propose([]byte("before"), h.now)
	h.run(20)
	collect(h, got)

	h.down[lead] = true
	next := h.waitLeader(400)
	if next == lead {
		t.Fatal("dead leader still leading")
	}
	h.nodes[next].Propose([]byte("after"), h.now)
	h.run(20)
	collect(h, got)

	// The old leader rejoins, steps down, and converges.
	h.down[lead] = false
	h.run(200)
	collect(h, got)
	for _, id := range h.ids {
		if s := fmt.Sprint(got[id]); s != "[before after]" {
			t.Fatalf("node %d applied %s, want [before after]", id, s)
		}
	}
	if s := h.nodes[lead].Status(); s.Role == Leader {
		t.Fatal("old leader did not step down")
	}
}

func TestMinorityLeaderCannotCommitOrHoldLease(t *testing.T) {
	h := newHarness(t, 3)
	lead := h.waitLeader(400)
	h.run(10)
	// Partition the leader away from both peers, in both directions.
	for _, id := range h.ids {
		if id != lead {
			h.cut[[2]int{lead, id}] = true
			h.cut[[2]int{id, lead}] = true
		}
	}
	idx, term, ok := h.nodes[lead].Propose([]byte("lost"), h.now)
	if !ok {
		t.Fatal("partitioned leader refused propose")
	}
	h.run(300)
	if c := h.nodes[lead].Status().Commit; c >= idx {
		t.Fatalf("minority leader committed %d >= proposed %d (term %d)", c, idx, term)
	}
	if h.nodes[lead].LeaseValid(h.now) {
		t.Fatal("minority leader still holds lease after partition")
	}
	if h.nodes[lead].Status().Role == Leader {
		t.Fatal("minority leader did not step down via quorum check")
	}
	// Majority side elected a replacement and can commit.
	next := h.waitLeader(400)
	if next == lead {
		t.Fatal("partitioned node won election")
	}
	nidx, _, ok := h.nodes[next].Propose([]byte("kept"), h.now)
	if !ok {
		t.Fatal("majority leader refused propose")
	}
	h.run(40)
	if c := h.nodes[next].Status().Commit; c < nidx {
		t.Fatalf("majority leader commit %d < %d", c, nidx)
	}
	// Heal: the stale entry is truncated, the committed one survives.
	h.cut = map[[2]int]bool{}
	got := map[int][]string{}
	h.run(300)
	collect(h, got)
	for _, id := range h.ids {
		for _, s := range got[id] {
			if s == "lost" {
				t.Fatalf("node %d applied the uncommitted minority entry", id)
			}
		}
	}
}

func TestSnapshotInstallCatchesUpBlankNode(t *testing.T) {
	h := newHarness(t, 3)
	straggler := 2
	h.down[straggler] = true
	lead := h.waitLeader(400)
	for i := 0; i < 6; i++ {
		h.nodes[lead].Propose([]byte(fmt.Sprintf("op%d", i)), h.now)
		h.run(4)
	}
	h.run(20)
	// Compact the leader's log so the straggler can only catch up by
	// snapshot; the snapshot payload stands in for the app state.
	st := h.nodes[lead].Status()
	h.nodes[lead].Compact(st.Commit, []byte("app-snapshot"))
	h.run(4)
	if s := h.nodes[lead].Status(); s.SnapIndex != st.Commit {
		t.Fatalf("compact: snapIndex %d, want %d", s.SnapIndex, st.Commit)
	}

	h.down[straggler] = false
	h.run(200)
	ev := h.nodes[straggler].TakeInstalled()
	if ev == nil {
		t.Fatal("straggler installed no snapshot")
	}
	if string(ev.Data) != "app-snapshot" || ev.Index != st.Commit {
		t.Fatalf("installed (%q, %d), want (app-snapshot, %d)", ev.Data, ev.Index, st.Commit)
	}
	if h.nodes[straggler].Tallies().SnapInstalls == 0 {
		t.Fatal("snapshot tally not counted")
	}
	// New entries still flow to it afterwards.
	h.nodes[lead].Propose([]byte("post"), h.now)
	got := map[int][]string{}
	h.run(40)
	collect(h, got)
	if s := fmt.Sprint(got[straggler]); s != "[post]" {
		t.Fatalf("straggler applied %s after install, want [post]", s)
	}
}

func TestSingleNodeLeadsImmediately(t *testing.T) {
	h := newHarness(t, 1)
	lead := h.waitLeader(200)
	idx, _, ok := h.nodes[lead].Propose([]byte("solo"), h.now)
	if !ok {
		t.Fatal("solo propose refused")
	}
	h.run(2)
	if c := h.nodes[lead].Status().Commit; c < idx {
		t.Fatalf("solo commit %d < %d", c, idx)
	}
}

func TestDiskStoreSurvivesCrash(t *testing.T) {
	rt := sim.NewVirtual()
	err := rt.Run("driver", func(p sim.Proc) {
		d := disk.New(disk.Config{
			BlockSize: 1024, NumBlocks: 64,
			Timing:    disk.FixedTiming{Latency: 500 * time.Microsecond},
			WriteBack: true, SyncTime: time.Millisecond,
		})
		st, err := NewDiskStore(d)
		if err != nil {
			t.Errorf("new store: %v", err)
			return
		}
		if _, ok, err := st.Load(p); err != nil || ok {
			t.Errorf("fresh load: ok=%v err=%v", ok, err)
			return
		}
		s1 := State{Term: 3, VotedFor: 1, Entries: []Entry{{Index: 1, Term: 2, Data: []byte("a")}}}
		if err := st.Save(p, s1); err != nil {
			t.Errorf("save 1: %v", err)
			return
		}
		s2 := s1
		s2.Term = 4
		s2.Entries = append(append([]Entry(nil), s1.Entries...), Entry{Index: 2, Term: 4, Data: []byte("b")})
		if err := st.Save(p, s2); err != nil {
			t.Errorf("save 2: %v", err)
			return
		}
		// A kill drops anything unsynced; both saves synced, so the
		// latest image must come back intact after remount.
		d.Crash(p.Now())
		d.Restore()
		got, ok, err := st.Load(p)
		if err != nil || !ok {
			t.Errorf("load after crash: ok=%v err=%v", ok, err)
			return
		}
		if got.Term != 4 || len(got.Entries) != 2 || string(got.Entries[1].Data) != "b" {
			t.Errorf("recovered %+v, want term 4 with 2 entries", got)
		}
	})
	if err != nil {
		t.Fatalf("runtime: %v", err)
	}
}

func TestDiskStoreNodePersistence(t *testing.T) {
	rt := sim.NewVirtual()
	err := rt.Run("driver", func(p sim.Proc) {
		d := disk.New(disk.Config{
			BlockSize: 1024, NumBlocks: 64,
			Timing:    disk.FixedTiming{Latency: 500 * time.Microsecond},
			WriteBack: true, SyncTime: time.Millisecond,
		})
		st, _ := NewDiskStore(d)
		cfg := Config{ID: 0, Peers: []int{0}, Seed: 5, Store: st}
		nd := New(cfg)
		if _, err := nd.Load(p, 0); err != nil {
			t.Errorf("load: %v", err)
			return
		}
		nd.Tick(nd.Deadline()) // single node: instant leader
		nd.Propose([]byte("durable"), nd.Deadline())
		if _, err := nd.Flush(p); err != nil {
			t.Errorf("flush: %v", err)
			return
		}
		term := nd.Status().Term

		d.Crash(p.Now())
		d.Restore()
		nd2 := New(cfg)
		if _, err := nd2.Load(p, 0); err != nil {
			t.Errorf("reload: %v", err)
			return
		}
		s := nd2.Status()
		if s.Term != term || s.LastIndex != 2 {
			t.Errorf("recovered term %d last %d, want term %d last 2", s.Term, s.LastIndex, term)
		}
	})
	if err != nil {
		t.Fatalf("runtime: %v", err)
	}
}
