package raft

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"

	"bridge/internal/disk"
	"bridge/internal/sim"
)

// State is the persistent consensus state: everything a replica must
// recover after a kill to keep its promises — the current term, who it
// voted for in that term, the compacted snapshot, and the log suffix
// beyond it. It is written atomically as one image.
type State struct {
	Term      uint64
	VotedFor  int
	SnapIndex uint64
	SnapTerm  uint64
	Snapshot  []byte
	Entries   []Entry
}

// Store persists consensus state. Save must be a durability barrier: when
// it returns, a crash cannot roll the state back past it. Load reports
// ok=false on a fresh (never-saved) store.
type Store interface {
	Load(p sim.Proc) (st State, ok bool, err error)
	Save(p sim.Proc, st State) error
}

// MemStore is an always-durable in-memory Store for tests.
type MemStore struct {
	st State
	ok bool
}

// Load returns the last saved state.
func (m *MemStore) Load(p sim.Proc) (State, bool, error) { return cloneState(m.st), m.ok, nil }

// Save retains a copy of st.
func (m *MemStore) Save(p sim.Proc, st State) error {
	m.st = cloneState(st)
	m.ok = true
	return nil
}

func cloneState(st State) State {
	out := st
	out.Snapshot = append([]byte(nil), st.Snapshot...)
	out.Entries = append([]Entry(nil), st.Entries...)
	return out
}

// DiskStore persists State on a simulated disk with a ping-pong layout:
// blocks 0 and 1 are alternating CRC'd headers, the rest splits into two
// payload regions written on alternating saves. A save gob-encodes the
// whole state, writes the payload blocks that changed since that region
// was last written, then the header, then syncs — so a torn save (the
// header missing or corrupt) falls back to the other region's intact
// image, and a Save that returned can never be lost. The disk should run
// write-back so the sync is the only barrier per save.
type DiskStore struct {
	d            *disk.Disk
	bs           int
	regionBlocks int
	seq          uint64
	last         [2][][]byte // per-region block images as of their last save
}

const storeMagic = "BRFTLG1\x00"

// NewDiskStore wraps a disk. The geometry needs at least 4 blocks; the
// usable capacity per image is (NumBlocks-2)/2 blocks.
func NewDiskStore(d *disk.Disk) (*DiskStore, error) {
	cfg := d.Config()
	if cfg.NumBlocks < 4 {
		return nil, fmt.Errorf("raft: store disk of %d blocks, need at least 4", cfg.NumBlocks)
	}
	return &DiskStore{d: d, bs: cfg.BlockSize, regionBlocks: (cfg.NumBlocks - 2) / 2}, nil
}

// Load reads both headers, validates their payloads, and returns the
// state with the highest intact sequence number. It also resets the
// dirty-block cache, so it must be called after every disk Restore.
func (s *DiskStore) Load(p sim.Proc) (State, bool, error) {
	s.last = [2][][]byte{}
	s.seq = 0
	var (
		best    State
		bestSeq uint64
		found   bool
	)
	for region := 0; region < 2; region++ {
		hdr, err := s.d.ReadBlock(p, region)
		if err != nil {
			return State{}, false, err
		}
		if string(hdr[:8]) != storeMagic {
			continue
		}
		seq := binary.BigEndian.Uint64(hdr[8:16])
		length := int(binary.BigEndian.Uint32(hdr[16:20]))
		crc := binary.BigEndian.Uint32(hdr[20:24])
		if length < 0 || length > s.regionBlocks*s.bs || int(seq%2) != region {
			continue
		}
		buf, err := s.readRegion(p, region, length)
		if err != nil {
			return State{}, false, err
		}
		if crc32.ChecksumIEEE(buf) != crc {
			continue
		}
		var st State
		if err := gob.NewDecoder(bytes.NewReader(buf)).Decode(&st); err != nil {
			continue
		}
		if !found || seq > bestSeq {
			best, bestSeq, found = st, seq, true
		}
		if seq > s.seq {
			s.seq = seq
		}
	}
	if !found {
		return State{}, false, nil
	}
	return best, true, nil
}

func (s *DiskStore) readRegion(p sim.Proc, region, length int) ([]byte, error) {
	base := 2 + region*s.regionBlocks
	nb := (length + s.bs - 1) / s.bs
	buf := make([]byte, 0, nb*s.bs)
	for i := 0; i < nb; i++ {
		b, err := s.d.ReadBlock(p, base+i)
		if err != nil {
			return nil, err
		}
		buf = append(buf, b...)
	}
	return buf[:length], nil
}

// Save writes st to the next region and syncs. Only blocks that differ
// from the region's previous image hit the disk, so steady-state saves
// (an appended entry, a term bump) cost a couple of block writes plus the
// sync barrier.
func (s *DiskStore) Save(p sim.Proc, st State) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&st); err != nil {
		return fmt.Errorf("raft: encode state: %w", err)
	}
	img := buf.Bytes()
	if len(img) > s.regionBlocks*s.bs {
		return fmt.Errorf("raft: state of %d bytes exceeds store capacity %d", len(img), s.regionBlocks*s.bs)
	}
	s.seq++
	region := int(s.seq % 2)
	base := 2 + region*s.regionBlocks
	nb := (len(img) + s.bs - 1) / s.bs
	if s.last[region] == nil {
		s.last[region] = make([][]byte, s.regionBlocks)
	}
	for i := 0; i < nb; i++ {
		blk := make([]byte, s.bs)
		end := (i + 1) * s.bs
		if end > len(img) {
			end = len(img)
		}
		copy(blk, img[i*s.bs:end])
		if prev := s.last[region][i]; prev != nil && bytes.Equal(prev, blk) {
			continue
		}
		if err := s.d.WriteBlock(p, base+i, blk); err != nil {
			return err
		}
		s.last[region][i] = blk
	}
	hdr := make([]byte, s.bs)
	copy(hdr, storeMagic)
	binary.BigEndian.PutUint64(hdr[8:16], s.seq)
	binary.BigEndian.PutUint32(hdr[16:20], uint32(len(img)))
	binary.BigEndian.PutUint32(hdr[20:24], crc32.ChecksumIEEE(img))
	if err := s.d.WriteBlock(p, region, hdr); err != nil {
		return err
	}
	return s.d.Sync(p)
}
