package obs

import (
	"sort"
	"time"
)

// numBuckets fixed log-scale buckets: bucket i covers virtual latencies in
// [1µs<<i, 1µs<<(i+1)). Bucket 0 also absorbs sub-microsecond durations and
// the last bucket absorbs everything from ~67s up. Fixed buckets keep
// exports byte-stable across runs and PRs.
const numBuckets = 27

// bucketOf returns the bucket index for a duration.
func bucketOf(d time.Duration) int {
	us := int64(d / time.Microsecond)
	b := 0
	for us >= 2 && b < numBuckets-1 {
		us >>= 1
		b++
	}
	return b
}

// bucketLo returns the inclusive lower bound of bucket i (0 for bucket 0).
func bucketLo(i int) time.Duration {
	if i == 0 {
		return 0
	}
	return time.Microsecond << uint(i)
}

// bucketHi returns the exclusive upper bound of bucket i.
func bucketHi(i int) time.Duration {
	return time.Microsecond << uint(i+1)
}

// hist is a fixed-bucket latency histogram. Callers hold the recorder mutex.
type hist struct {
	counts [numBuckets]int64
	count  int64
	total  time.Duration
	max    time.Duration
}

func (h *hist) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketOf(d)]++
	h.count++
	h.total += d
	if d > h.max {
		h.max = d
	}
}

// quantile returns the upper bound of the bucket containing the q-quantile
// observation, clipped to the observed maximum. Bucket bounds (rather than
// interpolation) keep the value exact-integer and deterministic.
func (h *hist) quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	rank := int64(q * float64(h.count))
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum int64
	for i := 0; i < numBuckets; i++ {
		cum += h.counts[i]
		if cum >= rank {
			hi := bucketHi(i)
			if hi > h.max {
				hi = h.max
			}
			return hi
		}
	}
	return h.max
}

// Bucket is one non-empty histogram bucket in a snapshot.
type Bucket struct {
	Lo, Hi time.Duration
	N      int64
}

// HistSnapshot is the exported state of one per-op-kind latency histogram.
// Quantiles are bucket upper bounds (see hist.quantile).
type HistSnapshot struct {
	Kind          string
	Count         int64
	Total         time.Duration
	Max           time.Duration
	P50, P95, P99 time.Duration
	Buckets       []Bucket
}

// Mean returns the mean latency.
func (h HistSnapshot) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return h.Total / time.Duration(h.Count)
}

// Histograms returns a snapshot of every per-kind latency histogram,
// sorted by kind.
func (r *Recorder) Histograms() []HistSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	kinds := make([]string, 0, len(r.hists))
	for k := range r.hists {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	out := make([]HistSnapshot, 0, len(kinds))
	for _, k := range kinds {
		h := r.hists[k]
		s := HistSnapshot{
			Kind:  k,
			Count: h.count,
			Total: h.total,
			Max:   h.max,
			P50:   h.quantile(0.50),
			P95:   h.quantile(0.95),
			P99:   h.quantile(0.99),
		}
		for i, n := range h.counts {
			if n > 0 {
				s.Buckets = append(s.Buckets, Bucket{Lo: bucketLo(i), Hi: bucketHi(i), N: n})
			}
		}
		out = append(out, s)
	}
	return out
}
