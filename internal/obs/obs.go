// Package obs is the virtual-time observability subsystem for the simulated
// Bridge system: causally-linked op spans, per-op-kind latency histograms,
// sampled gauges, a typed metrics registry, and deterministic exporters
// (Chrome trace_event JSON and a plain-text per-node report).
//
// Everything in this package is measured in virtual time. There is no wall
// clock anywhere: timestamps are the simulation's time.Duration offsets, and
// identifiers are allocated sequentially under a mutex, which is
// deterministic because the virtual scheduler runs one process at a time.
// Two runs with the same seed therefore produce byte-identical exports —
// the property the chaos replay tests and the CI trace-diff job rely on.
//
// The package depends only on the standard library so every layer
// (msg, disk, lfs, core, bridge) can import it without cycles.
package obs

import "time"

// TraceID identifies one client operation end to end. Every message and
// span caused by that operation carries the same TraceID. Zero means
// "untraced".
type TraceID uint64

// SpanID identifies one span within a recorder. Zero means "no span" and is
// used as the parent of root spans.
type SpanID uint64

// Config configures a Recorder and the facade's gauge sampler.
type Config struct {
	// SpanCap bounds the number of retained spans; spans started beyond
	// the cap are counted (and their lifecycle still tracked) but their
	// payload is dropped. Default 1<<18.
	SpanCap int
	// SampleEvery is the virtual-time interval at which per-node gauges
	// (queue depth, disk utilization) are sampled. Default 250ms.
	SampleEvery time.Duration
}

// WithDefaults returns the config with zero fields defaulted.
func (c Config) WithDefaults() Config {
	if c.SpanCap == 0 {
		c.SpanCap = 1 << 18
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 250 * time.Millisecond
	}
	return c
}
