package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestSpanLifecycle(t *testing.T) {
	r := NewRecorder(Config{})
	tr := r.NewTrace()
	if tr == 0 {
		t.Fatal("NewTrace returned 0")
	}
	sp := r.Start(10*time.Millisecond, tr, 0, "client.read", 0)
	if r.OpenSpans() != 1 {
		t.Fatalf("OpenSpans = %d, want 1", r.OpenSpans())
	}
	child := r.Start(12*time.Millisecond, tr, sp.ID(), "server.read", 0)
	child.SetQueueWait(1 * time.Millisecond)
	child.Annotate("retry 1")
	child.End(15*time.Millisecond, nil)
	sp.End(20*time.Millisecond, errors.New("boom"))
	if r.OpenSpans() != 0 {
		t.Fatalf("OpenSpans = %d, want 0", r.OpenSpans())
	}

	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Kind != "client.read" || spans[0].Err != "boom" {
		t.Errorf("root span = %+v", spans[0])
	}
	if spans[1].Parent != sp.ID() || spans[1].QueueWait != time.Millisecond {
		t.Errorf("child span = %+v", spans[1])
	}
	if len(spans[1].Annotations) != 1 || spans[1].Annotations[0] != "retry 1" {
		t.Errorf("annotations = %v", spans[1].Annotations)
	}

	// Ending again is counted, not recorded.
	sp.End(25*time.Millisecond, nil)
	if r.DoubleEnds() != 1 {
		t.Errorf("DoubleEnds = %d, want 1", r.DoubleEnds())
	}
}

func TestSpanCapDropsPayloadNotLifecycle(t *testing.T) {
	r := NewRecorder(Config{SpanCap: 2})
	var refs []SpanRef
	for i := 0; i < 5; i++ {
		refs = append(refs, r.Start(time.Duration(i), 1, 0, "client.read", 0))
	}
	if r.OpenSpans() != 5 {
		t.Fatalf("OpenSpans = %d, want 5", r.OpenSpans())
	}
	for _, ref := range refs {
		ref.End(10, nil)
	}
	if r.OpenSpans() != 0 {
		t.Fatalf("OpenSpans = %d, want 0", r.OpenSpans())
	}
	if r.DroppedSpans() != 3 {
		t.Errorf("DroppedSpans = %d, want 3", r.DroppedSpans())
	}
	if got := len(r.Spans()); got != 2 {
		t.Errorf("retained %d spans, want 2", got)
	}
}

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	if r.NewTrace() != 0 {
		t.Error("nil NewTrace != 0")
	}
	sp := r.Start(0, 1, 0, "x", 0)
	sp.Annotate("a")
	sp.SetQueueWait(1)
	sp.End(1, nil)
	r.Event(0, 1, "k", "d")
	r.Sample(0, 1, "g", 2)
	if r.OpenSpans() != 0 || r.DoubleEnds() != 0 || len(r.Spans()) != 0 {
		t.Error("nil recorder recorded something")
	}
	if err := r.WriteChromeTrace(&bytes.Buffer{}); !errors.Is(err, ErrNoRecorder) {
		t.Errorf("WriteChromeTrace err = %v", err)
	}
	if err := r.WriteTop(&bytes.Buffer{}); !errors.Is(err, ErrNoRecorder) {
		t.Errorf("WriteTop err = %v", err)
	}
}

func TestHistBuckets(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0},
		{time.Microsecond, 0},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 1},
		{4 * time.Microsecond, 2},
		{time.Millisecond, 9}, // 1000µs ∈ [512µs, 1024µs)
		{time.Hour, numBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.d); got != c.want {
			t.Errorf("bucketOf(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	for i := 1; i < numBuckets; i++ {
		if bucketOf(bucketLo(i)) != i {
			t.Errorf("bucketLo(%d) lands in bucket %d", i, bucketOf(bucketLo(i)))
		}
	}
}

func TestHistQuantiles(t *testing.T) {
	r := NewRecorder(Config{})
	for i := 0; i < 99; i++ {
		sp := r.Start(0, 1, 0, "disk.read", 1)
		sp.End(time.Millisecond, nil) // bucket 9: [512µs, 1024µs)
	}
	sp := r.Start(0, 1, 0, "disk.read", 1)
	sp.End(100*time.Millisecond, nil)
	hs := r.Histograms()
	if len(hs) != 1 {
		t.Fatalf("got %d histograms", len(hs))
	}
	h := hs[0]
	if h.Kind != "disk.read" || h.Count != 100 {
		t.Fatalf("snapshot = %+v", h)
	}
	if h.Max != 100*time.Millisecond {
		t.Errorf("Max = %v", h.Max)
	}
	// p50/p95 fall in the 1ms bucket: upper bound 1024µs.
	if h.P50 != 1024*time.Microsecond || h.P95 != 1024*time.Microsecond {
		t.Errorf("P50 = %v, P95 = %v", h.P50, h.P95)
	}
	// p99 is the 99th observation — still 1ms; the 100th is the outlier.
	if h.P99 != 1024*time.Microsecond {
		t.Errorf("P99 = %v", h.P99)
	}
	if h.Mean() <= time.Millisecond {
		t.Errorf("Mean = %v", h.Mean())
	}
}

func TestRegistryTypedHandles(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("bridge.retries", "ops", "retries sent")
	c.Add(3)
	if c.Value() != 3 || r.Get("bridge.retries") != 3 {
		t.Errorf("counter = %d / %d", c.Value(), r.Get("bridge.retries"))
	}
	tm := r.Timer("disk.busy", "time the disk spent on accesses")
	tm.Add(2 * time.Second)
	if tm.Value() != 2*time.Second || r.GetTime("disk.busy") != 2*time.Second {
		t.Errorf("timer = %v", tm.Value())
	}
	g := r.Gauge("queue", "msgs", "queue depth")
	g.Set(4)
	g.Set(2)
	st := g.Stats()
	if st.Last != 2 || st.Max != 4 || st.Samples != 2 || st.Sum != 6 || st.Avg() != 3 {
		t.Errorf("gauge stats = %+v", st)
	}

	// Reset zeroes values but keeps registrations: old handles stay live.
	r.Reset()
	if c.Value() != 0 || tm.Value() != 0 || g.Stats().Samples != 0 {
		t.Error("Reset did not zero values")
	}
	c.Add(1)
	if r.Get("bridge.retries") != 1 {
		t.Error("handle dead after Reset")
	}

	// A shim-created metric is upgraded by a typed registration.
	r.Add("late.typed", 5)
	lt := r.Counter("late.typed", "ops", "help text")
	if lt.Value() != 5 {
		t.Errorf("upgraded counter = %d", lt.Value())
	}
	vals := r.Values()
	found := false
	for _, v := range vals {
		if v.Name == "late.typed" {
			found = true
			if v.Help != "help text" || v.Kind != KindCounter {
				t.Errorf("upgraded desc = %+v", v.Desc)
			}
		}
	}
	if !found {
		t.Error("late.typed missing from Values")
	}

	// Conflicting typed re-registration panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic on kind conflict")
			}
		}()
		r.Timer("bridge.retries", "now a timer")
	}()
}

func TestValuesSortedAndNilRegistry(t *testing.T) {
	r := NewRegistry()
	r.Add("z", 1)
	r.Add("a", 1)
	r.Add("m", 1)
	vals := r.Values()
	for i := 1; i < len(vals); i++ {
		if vals[i-1].Name >= vals[i].Name {
			t.Fatalf("Values not sorted: %q >= %q", vals[i-1].Name, vals[i].Name)
		}
	}

	var nr *Registry
	nr.Add("x", 1)
	nr.AddTime("y", time.Second)
	nr.Reset()
	nr.Counter("c", "", "").Add(1)
	nr.Timer("t", "").Add(1)
	nr.Gauge("g", "", "").Set(1)
	if nr.Get("x") != 0 || nr.GetTime("y") != 0 || nr.Values() != nil {
		t.Error("nil registry not inert")
	}
}

// fillRecorder builds identical content on any recorder — the determinism
// fixture for the exporter tests.
func fillRecorder(r *Recorder) {
	tr := r.NewTrace()
	root := r.Start(time.Millisecond, tr, 0, "client.read", 0)
	srv := r.Start(2*time.Millisecond, tr, root.ID(), "server.read", 0)
	srv.SetQueueWait(300 * time.Microsecond)
	lfs := r.Start(3*time.Millisecond, tr, srv.ID(), "lfs.read", 2)
	dsk := r.Start(4*time.Millisecond, tr, lfs.ID(), "disk.read", 2)
	dsk.End(19*time.Millisecond, nil)
	lfs.End(20*time.Millisecond, nil)
	srv.Annotate("retry 1")
	srv.End(21*time.Millisecond, nil)
	root.End(22*time.Millisecond, errors.New(`timeout "quoted"`))
	r.Event(5*time.Millisecond, tr, "fault.drop", "n1 -> n2")
	r.Sample(10*time.Millisecond, 2, "queue_depth", 3)
	r.Sample(10*time.Millisecond, 2, "disk_util_pct", 75)
}

func TestChromeTraceDeterministicAndValid(t *testing.T) {
	var outs [2]bytes.Buffer
	for i := range outs {
		r := NewRecorder(Config{})
		fillRecorder(r)
		if err := r.WriteChromeTrace(&outs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(outs[0].Bytes(), outs[1].Bytes()) {
		t.Fatal("two identical recorders produced different Chrome traces")
	}

	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Pid  int     `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(outs[0].Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var phases = map[string]int{}
	for _, e := range doc.TraceEvents {
		phases[e.Ph]++
	}
	if phases["X"] != 4 || phases["i"] != 1 || phases["C"] != 2 || phases["M"] == 0 {
		t.Errorf("event phases = %v", phases)
	}
	if strings.Contains(outs[0].String(), "\\u") == false {
		// The quoted error must be escaped, not break the JSON.
		if !strings.Contains(outs[0].String(), `timeout \"quoted\"`) {
			t.Error("error text not escaped into JSON")
		}
	}
}

func TestTopReportDeterministic(t *testing.T) {
	var outs [2]bytes.Buffer
	for i := range outs {
		r := NewRecorder(Config{})
		fillRecorder(r)
		if err := r.WriteTop(&outs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(outs[0].Bytes(), outs[1].Bytes()) {
		t.Fatal("two identical recorders produced different top reports")
	}
	s := outs[0].String()
	for _, want := range []string{"node", "disk-busy", "client.read", "qdepth"} {
		if !strings.Contains(s, want) {
			t.Errorf("top report missing %q:\n%s", want, s)
		}
	}
}
