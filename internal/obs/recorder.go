package obs

import (
	"sync"
	"time"
)

// Span is one recorded operation interval. Start and End are virtual times;
// QueueWait is the part of the interval spent waiting in a message queue
// before service began (so service time = End - Start - QueueWait for
// server-side spans).
type Span struct {
	Trace  TraceID
	ID     SpanID
	Parent SpanID
	// Kind names the operation with a layer prefix: "client.read",
	// "server.write", "lfs.readvec", "disk.read", ...
	Kind string
	// Node is the cluster node index the span executed on (0 is the
	// Bridge server, 1..P the storage nodes).
	Node        int
	Start, End  time.Duration
	QueueWait   time.Duration
	Annotations []string
	// Err is the failure text, "" on success.
	Err string
}

// Event is an instantaneous annotation (a fault injection, a drop, a cache
// invalidation) tied to a trace but not to a span interval.
type Event struct {
	At     time.Duration
	Trace  TraceID
	Kind   string
	Detail string
}

// Sample is one gauge observation for a node, taken by the virtual-time
// sampler.
type Sample struct {
	At    time.Duration
	Node  int
	Name  string
	Value int64
}

type spanRec struct {
	Span
	done bool
}

// Recorder collects spans, events, and samples. All methods are safe for
// concurrent use and safe on a nil receiver (a nil *Recorder records
// nothing), so instrumented code needs no "is observability on?" branches.
type Recorder struct {
	mu        sync.Mutex
	cap       int
	nextTrace uint64
	nextSpan  uint64
	spans     []spanRec
	// open maps an in-flight span to its index in spans, or -1 when the
	// span was dropped at the cap; lifecycle accounting covers dropped
	// spans too.
	open       map[SpanID]int
	dropped    int
	doubleEnds int
	events     []Event
	samples    []Sample
	hists      map[string]*hist
}

// NewRecorder creates a recorder with the given config.
func NewRecorder(cfg Config) *Recorder {
	cfg = cfg.WithDefaults()
	return &Recorder{
		cap:   cfg.SpanCap,
		open:  make(map[SpanID]int),
		hists: make(map[string]*hist),
	}
}

// NewTrace allocates a trace ID. Sequential allocation is deterministic
// under the virtual scheduler.
func (r *Recorder) NewTrace() TraceID {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextTrace++
	return TraceID(r.nextTrace)
}

// Start opens a span at virtual time at. parent is the causing span (0 for
// a root span). The returned ref must be ended exactly once.
func (r *Recorder) Start(at time.Duration, trace TraceID, parent SpanID, kind string, node int) SpanRef {
	if r == nil {
		return SpanRef{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextSpan++
	id := SpanID(r.nextSpan)
	if len(r.spans) >= r.cap {
		r.dropped++
		r.open[id] = -1
	} else {
		r.open[id] = len(r.spans)
		r.spans = append(r.spans, spanRec{Span: Span{
			Trace: trace, ID: id, Parent: parent, Kind: kind, Node: node, Start: at,
		}})
	}
	return SpanRef{r: r, id: id}
}

// Event records an instantaneous event.
func (r *Recorder) Event(at time.Duration, trace TraceID, kind, detail string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.events = append(r.events, Event{At: at, Trace: trace, Kind: kind, Detail: detail})
	r.mu.Unlock()
}

// Sample records one gauge observation.
func (r *Recorder) Sample(at time.Duration, node int, name string, v int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.samples = append(r.samples, Sample{At: at, Node: node, Name: name, Value: v})
	r.mu.Unlock()
}

// Spans returns a copy of every closed span, in span-ID (creation) order.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, 0, len(r.spans))
	for _, s := range r.spans {
		if s.done {
			out = append(out, s.Span)
		}
	}
	return out
}

// Events returns a copy of all recorded events in emission order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Samples returns a copy of all gauge samples in emission order.
func (r *Recorder) Samples() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Sample, len(r.samples))
	copy(out, r.samples)
	return out
}

// OpenSpans returns the number of spans started but not yet ended. After a
// run drains it must be zero — the span-lifecycle tests assert exactly that.
func (r *Recorder) OpenSpans() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.open)
}

// DoubleEnds returns how many times End was called on an already-ended
// span; any nonzero value is an instrumentation bug.
func (r *Recorder) DoubleEnds() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.doubleEnds
}

// DroppedSpans returns how many spans were dropped at the SpanCap.
func (r *Recorder) DroppedSpans() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// SpanRef is a handle to an in-flight span. The zero value is valid and
// records nothing, so instrumented code can thread refs unconditionally.
type SpanRef struct {
	r  *Recorder
	id SpanID
}

// ID returns the span's ID (0 for the zero ref), for use as a child's
// parent or a message's span stamp.
func (s SpanRef) ID() SpanID { return s.id }

// SetQueueWait records the queue-wait component of the span.
func (s SpanRef) SetQueueWait(d time.Duration) {
	if s.r == nil {
		return
	}
	s.r.mu.Lock()
	defer s.r.mu.Unlock()
	if idx, ok := s.r.open[s.id]; ok && idx >= 0 {
		s.r.spans[idx].QueueWait = d
	}
}

// Annotate appends a free-form note (a retry, a fault, a cache hit) to the
// span. Annotations on ended or dropped spans are ignored.
func (s SpanRef) Annotate(text string) {
	if s.r == nil {
		return
	}
	s.r.mu.Lock()
	defer s.r.mu.Unlock()
	if idx, ok := s.r.open[s.id]; ok && idx >= 0 {
		s.r.spans[idx].Annotations = append(s.r.spans[idx].Annotations, text)
	}
}

// End closes the span at virtual time at; err is recorded when non-nil.
// Ending a span twice is counted (see DoubleEnds) and otherwise ignored.
func (s SpanRef) End(at time.Duration, err error) {
	text := ""
	if err != nil {
		text = err.Error()
	}
	s.EndErr(at, text)
}

// EndErr is End with the failure pre-rendered; errText "" means success.
func (s SpanRef) EndErr(at time.Duration, errText string) {
	if s.r == nil {
		return
	}
	r := s.r
	r.mu.Lock()
	defer r.mu.Unlock()
	idx, ok := r.open[s.id]
	if !ok {
		r.doubleEnds++
		return
	}
	delete(r.open, s.id)
	if idx < 0 {
		return // dropped at cap: lifecycle tracked, payload not retained
	}
	sp := &r.spans[idx]
	sp.End = at
	sp.Err = errText
	sp.done = true
	h := r.hists[sp.Kind]
	if h == nil {
		h = &hist{}
		r.hists[sp.Kind] = h
	}
	h.observe(at - sp.Start)
}
