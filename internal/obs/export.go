package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"
)

// ErrNoRecorder is returned by the exporters when observability is off.
var ErrNoRecorder = errors.New("obs: no recorder (observability disabled)")

// Span lanes in the Chrome trace: one tid per layer so about://tracing
// shows client, server, LFS, and disk activity as separate rows per node.
const (
	laneClient = iota
	laneServer
	laneLFS
	laneDisk
	laneEvents
	laneCounters
)

var laneNames = map[int]string{
	laneClient:   "client ops",
	laneServer:   "server ops",
	laneLFS:      "lfs ops",
	laneDisk:     "disk",
	laneEvents:   "events",
	laneCounters: "counters",
}

// laneOf maps a span kind ("server.read", "disk.write", ...) to its lane.
func laneOf(kind string) int {
	for i := 0; i < len(kind); i++ {
		if kind[i] == '.' {
			switch kind[:i] {
			case "client":
				return laneClient
			case "server":
				return laneServer
			case "lfs":
				return laneLFS
			case "disk":
				return laneDisk
			}
			break
		}
	}
	return laneEvents
}

// chromeEvent is one trace_event entry. Fields marshal in declaration
// order, which (plus sorted map keys in encoding/json) is what makes the
// export byte-deterministic.
type chromeEvent struct {
	Name string   `json:"name"`
	Ph   string   `json:"ph"`
	Ts   float64  `json:"ts"`
	Dur  *float64 `json:"dur,omitempty"`
	Pid  int      `json:"pid"`
	Tid  int      `json:"tid"`
	S    string   `json:"s,omitempty"`
	Args any      `json:"args,omitempty"`
}

type spanArgs struct {
	Trace       TraceID  `json:"trace"`
	Span        SpanID   `json:"span"`
	Parent      SpanID   `json:"parent,omitempty"`
	QueueWaitUs float64  `json:"queue_wait_us,omitempty"`
	Ann         []string `json:"ann,omitempty"`
	Err         string   `json:"err,omitempty"`
}

type nameArgs struct {
	Name string `json:"name"`
}

type eventArgs struct {
	Trace  TraceID `json:"trace,omitempty"`
	Detail string  `json:"detail,omitempty"`
}

// us converts a virtual duration to trace_event microseconds.
func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// WriteChromeTrace writes the recorder's spans, events, and gauge samples
// as Chrome trace_event JSON (load in about://tracing or Perfetto). The
// output is byte-identical across same-seed runs: virtual timestamps only,
// struct-ordered keys, spans sorted by (start, span ID).
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	if r == nil {
		return ErrNoRecorder
	}
	spans := r.Spans()
	events := r.Events()
	samples := r.Samples()
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].ID < spans[j].ID
	})

	// Every (pid, lane) pair that appears gets process/thread metadata.
	pids := map[int]bool{0: true}
	lanes := map[[2]int]bool{}
	for _, s := range spans {
		pids[s.Node] = true
		lanes[[2]int{s.Node, laneOf(s.Kind)}] = true
	}
	for _, s := range samples {
		pids[s.Node] = true
		lanes[[2]int{s.Node, laneCounters}] = true
	}
	if len(events) > 0 {
		lanes[[2]int{0, laneEvents}] = true
	}
	pidList := make([]int, 0, len(pids))
	for pid := range pids {
		pidList = append(pidList, pid)
	}
	sort.Ints(pidList)
	laneList := make([][2]int, 0, len(lanes))
	for l := range lanes {
		laneList = append(laneList, l)
	}
	sort.Slice(laneList, func(i, j int) bool {
		if laneList[i][0] != laneList[j][0] {
			return laneList[i][0] < laneList[j][0]
		}
		return laneList[i][1] < laneList[j][1]
	})

	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(e chromeEvent) error {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		sep := ",\n"
		if first {
			sep = ""
			first = false
		}
		if _, err := io.WriteString(w, sep); err != nil {
			return err
		}
		_, err = w.Write(b)
		return err
	}

	for _, pid := range pidList {
		name := fmt.Sprintf("node %d (storage)", pid)
		if pid == 0 {
			name = "node 0 (bridge server)"
		}
		if err := emit(chromeEvent{Name: "process_name", Ph: "M", Pid: pid, Args: nameArgs{Name: name}}); err != nil {
			return err
		}
	}
	for _, l := range laneList {
		if err := emit(chromeEvent{Name: "thread_name", Ph: "M", Pid: l[0], Tid: l[1], Args: nameArgs{Name: laneNames[l[1]]}}); err != nil {
			return err
		}
	}
	for _, s := range spans {
		dur := us(s.End - s.Start)
		if err := emit(chromeEvent{
			Name: s.Kind, Ph: "X", Ts: us(s.Start), Dur: &dur,
			Pid: s.Node, Tid: laneOf(s.Kind),
			Args: spanArgs{
				Trace: s.Trace, Span: s.ID, Parent: s.Parent,
				QueueWaitUs: us(s.QueueWait), Ann: s.Annotations, Err: s.Err,
			},
		}); err != nil {
			return err
		}
	}
	for _, e := range events {
		if err := emit(chromeEvent{
			Name: e.Kind, Ph: "i", Ts: us(e.At), Pid: 0, Tid: laneEvents, S: "g",
			Args: eventArgs{Trace: e.Trace, Detail: e.Detail},
		}); err != nil {
			return err
		}
	}
	for _, s := range samples {
		if err := emit(chromeEvent{
			Name: s.Name, Ph: "C", Ts: us(s.At), Pid: s.Node, Tid: laneCounters,
			Args: map[string]int64{s.Name: s.Value},
		}); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}

// topNode accumulates per-node aggregates for WriteTop.
type topNode struct {
	spans    int
	errs     int
	diskBusy time.Duration
	qSum     int64
	qCnt     int64
	qMax     int64
}

// WriteTop writes a plain-text per-node report (a deterministic
// "bridgetop"): span counts, disk busy time and utilization, queue-depth
// statistics, and the per-op-kind latency histograms.
func (r *Recorder) WriteTop(w io.Writer) error {
	if r == nil {
		return ErrNoRecorder
	}
	spans := r.Spans()
	samples := r.Samples()

	var elapsed time.Duration
	nodes := map[int]*topNode{}
	nodeOf := func(n int) *topNode {
		t := nodes[n]
		if t == nil {
			t = &topNode{}
			nodes[n] = t
		}
		return t
	}
	for _, s := range spans {
		t := nodeOf(s.Node)
		t.spans++
		if s.Err != "" {
			t.errs++
		}
		if laneOf(s.Kind) == laneDisk {
			t.diskBusy += s.End - s.Start
		}
		if s.End > elapsed {
			elapsed = s.End
		}
	}
	for _, s := range samples {
		if s.At > elapsed {
			elapsed = s.At
		}
		if s.Name != "queue_depth" {
			continue
		}
		t := nodeOf(s.Node)
		t.qSum += s.Value
		t.qCnt++
		if s.Value > t.qMax {
			t.qMax = s.Value
		}
	}
	nodeList := make([]int, 0, len(nodes))
	for n := range nodes {
		nodeList = append(nodeList, n)
	}
	sort.Ints(nodeList)

	if _, err := fmt.Fprintf(w, "bridge obs report (virtual time, elapsed %v)\n\n", elapsed); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-6s %8s %6s %12s %7s %14s\n", "node", "spans", "errs", "disk-busy", "util%", "qdepth avg/max"); err != nil {
		return err
	}
	for _, n := range nodeList {
		t := nodes[n]
		busy, util := "-", "-"
		if t.diskBusy > 0 && elapsed > 0 {
			busy = t.diskBusy.String()
			util = fmt.Sprintf("%.1f", 100*float64(t.diskBusy)/float64(elapsed))
		}
		qd := "-"
		if t.qCnt > 0 {
			qd = fmt.Sprintf("%.1f/%d", float64(t.qSum)/float64(t.qCnt), t.qMax)
		}
		if _, err := fmt.Fprintf(w, "%-6d %8d %6d %12s %7s %14s\n", n, t.spans, t.errs, busy, util, qd); err != nil {
			return err
		}
	}

	hists := r.Histograms()
	if len(hists) > 0 {
		if _, err := fmt.Fprintf(w, "\n%-22s %8s %10s %10s %10s %10s %10s\n", "op kind", "count", "mean", "p50", "p95", "p99", "max"); err != nil {
			return err
		}
		for _, h := range hists {
			if _, err := fmt.Fprintf(w, "%-22s %8d %10v %10v %10v %10v %10v\n",
				h.Kind, h.Count, h.Mean(), h.P50, h.P95, h.P99, h.Max); err != nil {
				return err
			}
		}
	}
	return nil
}
