package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// MetricKind distinguishes counters (monotonic int64), timers (accumulated
// virtual duration), and gauges (sampled instantaneous values).
type MetricKind uint8

const (
	KindCounter MetricKind = iota + 1
	KindTimer
	KindGauge
)

// String returns the kind name used in generated documentation.
func (k MetricKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindTimer:
		return "timer"
	case KindGauge:
		return "gauge"
	}
	return "unknown"
}

// Desc describes a registered metric.
type Desc struct {
	Name string
	Unit string
	Help string
	Kind MetricKind
}

// metric holds the live value slots. Values are atomics so Add/Set race
// cleanly with Reset and with snapshot readers; the registry mutex guards
// only the name map.
type metric struct {
	desc  Desc
	typed bool // registered through the typed API; desc is authoritative
	n     atomic.Int64
	dur   atomic.Int64 // nanoseconds
	// gauge aggregates
	sum, max, samples atomic.Int64
}

func (m *metric) reset() {
	m.n.Store(0)
	m.dur.Store(0)
	m.sum.Store(0)
	m.max.Store(0)
	m.samples.Store(0)
}

// Registry is a set of named metrics. Handles are registered once (name,
// kind, unit, help) and then updated lock-free. The nil *Registry is valid:
// it hands out inert handles.
type Registry struct {
	mu sync.Mutex
	m  map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: make(map[string]*metric)}
}

// lookup finds or creates a metric. A typed registration over an existing
// untyped (shim-created) metric upgrades its description; two typed
// registrations of the same name must agree on kind.
func (r *Registry) lookup(name string, kind MetricKind, unit, help string, typed bool) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	mt, ok := r.m[name]
	if !ok {
		mt = &metric{desc: Desc{Name: name, Unit: unit, Help: help, Kind: kind}, typed: typed}
		r.m[name] = mt
		return mt
	}
	if typed {
		if mt.typed && mt.desc.Kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v, was %v", name, kind, mt.desc.Kind))
		}
		mt.desc = Desc{Name: name, Unit: unit, Help: help, Kind: kind}
		mt.typed = true
	}
	return mt
}

// Counter registers (or finds) a counter metric and returns its handle.
func (r *Registry) Counter(name, unit, help string) Counter {
	if r == nil {
		return Counter{}
	}
	return Counter{m: r.lookup(name, KindCounter, unit, help, true)}
}

// Timer registers (or finds) a virtual-duration accumulator.
func (r *Registry) Timer(name, help string) Timer {
	if r == nil {
		return Timer{}
	}
	return Timer{m: r.lookup(name, KindTimer, "duration", help, true)}
}

// Gauge registers (or finds) a sampled-value gauge.
func (r *Registry) Gauge(name, unit, help string) Gauge {
	if r == nil {
		return Gauge{}
	}
	return Gauge{m: r.lookup(name, KindGauge, unit, help, true)}
}

// Add increments the named counter, creating it untyped if needed. This is
// the compat path used by the internal/stats shim.
func (r *Registry) Add(name string, delta int64) {
	if r == nil {
		return
	}
	r.lookup(name, KindCounter, "", "", false).n.Add(delta)
}

// AddTime accumulates a duration under the named timer (compat path).
func (r *Registry) AddTime(name string, d time.Duration) {
	if r == nil {
		return
	}
	r.lookup(name, KindTimer, "duration", "", false).dur.Add(int64(d))
}

// Get returns the named counter's value (0 if absent).
func (r *Registry) Get(name string) int64 {
	if mt := r.find(name); mt != nil {
		return mt.n.Load()
	}
	return 0
}

// GetTime returns the named timer's accumulated duration (0 if absent).
func (r *Registry) GetTime(name string) time.Duration {
	if mt := r.find(name); mt != nil {
		return time.Duration(mt.dur.Load())
	}
	return 0
}

func (r *Registry) find(name string) *metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.m[name]
}

// Reset zeroes every metric's value but keeps all registrations, so handles
// held by instrumented code stay live across a reset.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, mt := range r.m {
		mt.reset()
	}
}

// GaugeStats summarizes a gauge's samples since the last reset.
type GaugeStats struct {
	Samples int64
	Last    int64
	Sum     int64
	Max     int64
}

// Avg returns the mean sampled value.
func (g GaugeStats) Avg() float64 {
	if g.Samples == 0 {
		return 0
	}
	return float64(g.Sum) / float64(g.Samples)
}

// Value is one metric's description plus its current value. Exactly one of
// Count, Time, or Gauge is meaningful, per Kind.
type Value struct {
	Desc
	Count int64
	Time  time.Duration
	Gauge GaugeStats
}

// Values returns every metric's current value, sorted by name.
func (r *Registry) Values() []Value {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.m))
	for name := range r.m {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Value, 0, len(names))
	for _, name := range names {
		mt := r.m[name]
		out = append(out, Value{
			Desc:  mt.desc,
			Count: mt.n.Load(),
			Time:  time.Duration(mt.dur.Load()),
			Gauge: GaugeStats{
				Samples: mt.samples.Load(),
				Last:    mt.n.Load(),
				Sum:     mt.sum.Load(),
				Max:     mt.max.Load(),
			},
		})
	}
	return out
}

// Counter is a typed handle to a monotonically increasing metric. The zero
// handle is inert.
type Counter struct{ m *metric }

// Add increments the counter.
func (c Counter) Add(delta int64) {
	if c.m != nil {
		c.m.n.Add(delta)
	}
}

// Value returns the current count.
func (c Counter) Value() int64 {
	if c.m == nil {
		return 0
	}
	return c.m.n.Load()
}

// Timer is a typed handle to an accumulated virtual duration.
type Timer struct{ m *metric }

// Add accumulates a duration.
func (t Timer) Add(d time.Duration) {
	if t.m != nil {
		t.m.dur.Add(int64(d))
	}
}

// Value returns the accumulated duration.
func (t Timer) Value() time.Duration {
	if t.m == nil {
		return 0
	}
	return time.Duration(t.m.dur.Load())
}

// Gauge is a typed handle to a sampled instantaneous value.
type Gauge struct{ m *metric }

// Set records one sample.
func (g Gauge) Set(v int64) {
	if g.m == nil {
		return
	}
	g.m.n.Store(v)
	g.m.sum.Add(v)
	g.m.samples.Add(1)
	// Max is the maximum sample, floored at zero; the gauges here (queue
	// depths, utilization percentages) are never negative.
	for {
		old := g.m.max.Load()
		if v <= old || g.m.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// Stats returns the gauge's sample summary.
func (g Gauge) Stats() GaugeStats {
	if g.m == nil {
		return GaugeStats{}
	}
	return GaugeStats{
		Samples: g.m.samples.Load(),
		Last:    g.m.n.Load(),
		Sum:     g.m.sum.Load(),
		Max:     g.m.max.Load(),
	}
}

// WriteDoc renders a markdown reference of every *typed* (help-bearing)
// metric across the given value sets, merged by name and sorted. Shim-
// created metrics with no help text are omitted — documenting them is the
// migration's job, not the generator's.
func WriteDoc(w io.Writer, sets ...[]Value) error {
	byName := make(map[string]Desc)
	for _, set := range sets {
		for _, v := range set {
			if v.Help == "" {
				continue
			}
			byName[v.Name] = v.Desc
		}
	}
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	if _, err := fmt.Fprintf(w, "# Metrics reference\n\nGenerated by `bridge.WriteMetricsDoc` — do not edit by hand.\nRegenerate with `UPDATE_METRICS_DOC=1 go test ./... -run TestMetricsDocUpToDate`.\n\n| Name | Kind | Unit | Help |\n|---|---|---|---|\n"); err != nil {
		return err
	}
	for _, name := range names {
		d := byName[name]
		if _, err := fmt.Fprintf(w, "| `%s` | %s | %s | %s |\n", d.Name, d.Kind, d.Unit, d.Help); err != nil {
			return err
		}
	}
	return nil
}
