package tcpnet

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"bridge/internal/lfs"
	"bridge/internal/msg"
)

func twoPeers(t *testing.T) (*Peer, *Peer) {
	t.Helper()
	a, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen a: %v", err)
	}
	b, err := Listen("127.0.0.1:0")
	if err != nil {
		a.Close()
		t.Fatalf("Listen b: %v", err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	// Peer a hosts node 1; peer b hosts node 2.
	a.AddRoute(2, b.Addr())
	b.AddRoute(1, a.Addr())
	return a, b
}

func TestLocalDelivery(t *testing.T) {
	a, _ := twoPeers(t)
	port := a.NewPort(msg.Addr{Node: 1, Port: "svc"})
	if err := a.Send(port.Addr(), &msg.Message{Body: "hello"}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	m, ok := port.Recv()
	if !ok || m.Body != "hello" {
		t.Fatalf("Recv = %v/%v", m, ok)
	}
}

func TestCrossPeerRoundTrip(t *testing.T) {
	a, b := twoPeers(t)
	server := b.NewPort(msg.Addr{Node: 2, Port: "echo"})
	client := a.NewPort(msg.Addr{Node: 1, Port: "cli"})

	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			m, ok := server.Recv()
			if !ok {
				return
			}
			reply := &msg.Message{From: server.Addr(), ReqID: m.ReqID, Body: "echo:" + m.Body.(string)}
			if err := b.Send(m.From, reply); err != nil {
				t.Errorf("server send: %v", err)
				return
			}
		}
	}()

	for i := 0; i < 10; i++ {
		req := &msg.Message{From: client.Addr(), ReqID: uint64(i + 1), Body: fmt.Sprintf("ping%d", i)}
		if err := a.Send(server.Addr(), req); err != nil {
			t.Fatalf("client send: %v", err)
		}
		m, ok := client.Recv()
		if !ok {
			t.Fatal("client port closed")
		}
		if m.Body != fmt.Sprintf("echo:ping%d", i) || m.ReqID != uint64(i+1) {
			t.Fatalf("reply %d = %+v", i, m)
		}
	}
	server.Close()
	<-done
}

func TestProtocolBodiesOverWire(t *testing.T) {
	a, b := twoPeers(t)
	server := b.NewPort(msg.Addr{Node: 2, Port: lfs.PortName})
	client := a.NewPort(msg.Addr{Node: 1, Port: "cli"})

	go func() {
		m, ok := server.Recv()
		if !ok {
			return
		}
		req := m.Body.(lfs.ReadReq)
		resp := lfs.ReadResp{Data: []byte{byte(req.BlockNum), 2, 3}, Addr: 77}
		b.Send(m.From, &msg.Message{From: server.Addr(), ReqID: m.ReqID, Body: resp})
	}()

	req := lfs.ReadReq{FileID: 9, BlockNum: 5, Hint: -1}
	if err := a.Send(server.Addr(), &msg.Message{From: client.Addr(), ReqID: 1, Body: req}); err != nil {
		t.Fatalf("send: %v", err)
	}
	m, ok := client.Recv()
	if !ok {
		t.Fatal("client port closed")
	}
	resp, isResp := m.Body.(lfs.ReadResp)
	if !isResp || resp.Addr != 77 || resp.Data[0] != 5 {
		t.Fatalf("reply = %+v", m.Body)
	}
}

func TestNoRoute(t *testing.T) {
	a, _ := twoPeers(t)
	err := a.Send(msg.Addr{Node: 42, Port: "x"}, &msg.Message{Body: "lost"})
	if !errors.Is(err, ErrNoRoute) {
		t.Fatalf("Send = %v, want ErrNoRoute", err)
	}
}

func TestUnknownPortDropsSilently(t *testing.T) {
	a, b := twoPeers(t)
	// Node 2 routes to peer b, but the port does not exist there.
	if err := a.Send(msg.Addr{Node: 2, Port: "ghost"}, &msg.Message{Body: "x"}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	// Existing traffic still flows afterwards.
	port := b.NewPort(msg.Addr{Node: 2, Port: "real"})
	if err := a.Send(port.Addr(), &msg.Message{Body: "y"}); err != nil {
		t.Fatalf("Send real: %v", err)
	}
	if m, ok := port.Recv(); !ok || m.Body != "y" {
		t.Fatalf("Recv = %v/%v", m, ok)
	}
}

func TestCloseUnblocksReceivers(t *testing.T) {
	a, _ := twoPeers(t)
	port := a.NewPort(msg.Addr{Node: 1, Port: "svc"})
	done := make(chan bool)
	go func() {
		_, ok := port.Recv()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	a.Close()
	select {
	case ok := <-done:
		if ok {
			t.Error("Recv returned ok after close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on close")
	}
	if err := a.Send(port.Addr(), &msg.Message{}); !errors.Is(err, ErrClosed) {
		t.Errorf("Send after close = %v, want ErrClosed", err)
	}
}

func TestDuplicatePortPanics(t *testing.T) {
	a, _ := twoPeers(t)
	a.NewPort(msg.Addr{Node: 1, Port: "dup"})
	defer func() {
		if recover() == nil {
			t.Error("no panic on duplicate port")
		}
	}()
	a.NewPort(msg.Addr{Node: 1, Port: "dup"})
}
