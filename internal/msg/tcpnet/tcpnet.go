// Package tcpnet realizes the Bridge message layer over real TCP sockets,
// backing the paper's remark that the message-passing design "could be
// realized equally well on any local area network". Each Peer hosts the
// ports of one or more nodes and routes messages to remote peers over
// gob-encoded streams.
//
// tcpnet is for wall-clock deployments and cross-checking; the simulated
// in-process network (package msg) remains the substrate for the
// deterministic experiments. Message bodies must be gob-registered;
// RegisterTypes registers the LFS and Bridge Server protocols.
package tcpnet

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"

	"bridge/internal/core"
	"bridge/internal/efs"
	"bridge/internal/lfs"
	"bridge/internal/msg"
)

// RegisterTypes registers every protocol body with gob. Call once per
// process before sending.
func RegisterTypes() {
	registerOnce.Do(func() {
		for _, v := range []any{
			lfs.CreateReq{}, lfs.CreateResp{}, lfs.DeleteReq{}, lfs.DeleteResp{},
			lfs.ReadReq{}, lfs.ReadResp{}, lfs.WriteReq{}, lfs.WriteResp{},
			lfs.StatReq{}, lfs.StatResp{}, lfs.SyncReq{}, lfs.SyncResp{},
			efs.FileInfo{},
			core.CreateReq{}, core.CreateResp{}, core.DeleteReq{}, core.DeleteResp{},
			core.OpenReq{}, core.OpenResp{}, core.StatReq{}, core.StatResp{},
			core.SeqReadReq{}, core.SeqReadResp{}, core.SeqWriteReq{}, core.SeqWriteResp{},
			core.RandReadReq{}, core.RandReadResp{}, core.RandWriteReq{}, core.RandWriteResp{},
			core.ListReq{}, core.ListResp{}, core.GetInfoReq{}, core.GetInfoResp{},
			core.ParallelOpenReq{}, core.ParallelOpenResp{},
			core.ParallelReadReq{}, core.ParallelReadResp{},
			core.ParallelWriteReq{}, core.ParallelWriteResp{},
			core.CloseJobReq{}, core.CloseJobResp{},
			core.WorkerData{}, core.WorkerPoke{}, core.WorkerBlock{},
		} {
			gob.Register(v)
		}
	})
}

var registerOnce sync.Once

// wireMsg is the on-the-wire envelope.
type wireMsg struct {
	To  msg.Addr
	Msg msg.Message
}

// ErrClosed is returned after a Peer has been closed.
var ErrClosed = errors.New("tcpnet: peer closed")

// ErrNoRoute is returned when no route is known for the destination node.
var ErrNoRoute = errors.New("tcpnet: no route to node")

// Port is a receive endpoint hosted by a Peer.
type Port struct {
	addr msg.Addr
	ch   chan *msg.Message
	once sync.Once
	done chan struct{}
}

// Addr returns the port's address.
func (p *Port) Addr() msg.Addr { return p.addr }

// Recv blocks until a message arrives; ok is false once the port (or its
// peer) is closed.
func (p *Port) Recv() (*msg.Message, bool) {
	select {
	case m, ok := <-p.ch:
		return m, ok
	case <-p.done:
		// Drain anything already queued before reporting closure.
		select {
		case m, ok := <-p.ch:
			return m, ok
		default:
			return nil, false
		}
	}
}

// Close closes the port.
func (p *Port) Close() { p.once.Do(func() { close(p.done) }) }

// Peer hosts ports and exchanges messages with other peers.
type Peer struct {
	listener net.Listener

	mu      sync.Mutex
	ports   map[msg.Addr]*Port
	routes  map[msg.NodeID]string
	conns   map[string]*outConn
	inbound map[net.Conn]struct{}
	closed  bool
	wg      sync.WaitGroup
}

type outConn struct {
	mu  sync.Mutex
	enc *gob.Encoder
	c   net.Conn
}

// Listen starts a peer on the given TCP address ("127.0.0.1:0" for an
// ephemeral port).
func Listen(addr string) (*Peer, error) {
	RegisterTypes()
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: listen %s: %w", addr, err)
	}
	p := &Peer{
		listener: l,
		ports:    make(map[msg.Addr]*Port),
		routes:   make(map[msg.NodeID]string),
		conns:    make(map[string]*outConn),
		inbound:  make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.accept()
	return p, nil
}

// Addr returns the peer's listen address.
func (p *Peer) Addr() string { return p.listener.Addr().String() }

// AddRoute declares that the given node's ports are hosted by the peer at
// hostport.
func (p *Peer) AddRoute(node msg.NodeID, hostport string) {
	p.mu.Lock()
	p.routes[node] = hostport
	p.mu.Unlock()
}

// NewPort registers a local port. It panics on duplicates, which are always
// wiring bugs.
func (p *Peer) NewPort(addr msg.Addr) *Port {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.ports[addr]; dup {
		panic(fmt.Sprintf("tcpnet: duplicate port %v", addr))
	}
	port := &Port{addr: addr, ch: make(chan *msg.Message, 64), done: make(chan struct{})}
	p.ports[addr] = port
	return port
}

// Send delivers m to the port at to, locally or across the network.
func (p *Peer) Send(to msg.Addr, m *msg.Message) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	if port, ok := p.ports[to]; ok {
		p.mu.Unlock()
		return deliver(port, m)
	}
	route, ok := p.routes[to.Node]
	p.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %v", ErrNoRoute, to)
	}
	conn, err := p.dial(route)
	if err != nil {
		return err
	}
	conn.mu.Lock()
	defer conn.mu.Unlock()
	if err := conn.enc.Encode(wireMsg{To: to, Msg: *m}); err != nil {
		// Drop the broken connection; the next send re-dials.
		p.mu.Lock()
		delete(p.conns, route)
		p.mu.Unlock()
		conn.c.Close()
		return fmt.Errorf("tcpnet: sending to %s: %w", route, err)
	}
	return nil
}

func deliver(port *Port, m *msg.Message) error {
	select {
	case <-port.done:
		return nil // dropped, like a dead node
	default:
	}
	select {
	case port.ch <- m:
		return nil
	case <-port.done:
		return nil
	}
}

func (p *Peer) dial(route string) (*outConn, error) {
	p.mu.Lock()
	if c, ok := p.conns[route]; ok {
		p.mu.Unlock()
		return c, nil
	}
	p.mu.Unlock()
	c, err := net.Dial("tcp", route)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: dialing %s: %w", route, err)
	}
	oc := &outConn{enc: gob.NewEncoder(c), c: c}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		c.Close()
		return nil, ErrClosed
	}
	if existing, ok := p.conns[route]; ok {
		c.Close()
		return existing, nil
	}
	p.conns[route] = oc
	return oc, nil
}

func (p *Peer) accept() {
	defer p.wg.Done()
	for {
		c, err := p.listener.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			c.Close()
			return
		}
		p.inbound[c] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(1)
		go p.serveConn(c)
	}
}

func (p *Peer) serveConn(c net.Conn) {
	defer p.wg.Done()
	defer func() {
		c.Close()
		p.mu.Lock()
		delete(p.inbound, c)
		p.mu.Unlock()
	}()
	dec := gob.NewDecoder(c)
	for {
		var wm wireMsg
		if err := dec.Decode(&wm); err != nil {
			return
		}
		p.mu.Lock()
		port, ok := p.ports[wm.To]
		p.mu.Unlock()
		if ok {
			m := wm.Msg
			_ = deliver(port, &m)
		}
		// Unknown destinations drop silently, like the simulated net.
	}
}

// Close shuts the peer down: the listener stops, connections close, and
// local ports unblock.
func (p *Peer) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	conns := p.conns
	p.conns = map[string]*outConn{}
	ports := p.ports
	inbound := make([]net.Conn, 0, len(p.inbound))
	for c := range p.inbound { //bridgevet:allow maporder — real-network teardown; socket close order is not simulation state
		inbound = append(inbound, c)
	}
	p.mu.Unlock()
	err := p.listener.Close()
	for _, c := range conns {
		c.c.Close()
	}
	for _, c := range inbound {
		c.Close()
	}
	for _, port := range ports {
		port.Close()
	}
	p.wg.Wait()
	return err
}
