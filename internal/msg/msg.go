// Package msg is the message-passing layer of the Bridge reproduction — the
// analog of Chrysalis atomic queues on the BBN Butterfly. Every Bridge
// component (Bridge Server, LFS instances, tool workers) owns one or more
// Ports, addressed by (node, port-name), and exchanges Messages through a
// Network that models transfer latency, bandwidth, and per-message CPU cost.
//
// The cost model follows the paper's environment: messages between
// processes on the same node are cheap (shared-memory queues), messages
// between nodes pay a base latency plus a per-byte cost, and both sender and
// receiver pay a small CPU charge per message. The paper notes the design
// "could be realized equally well on any local area network"; the tcpnet
// subpackage provides that realization for wall-clock runs.
package msg

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"bridge/internal/obs"
	"bridge/internal/sim"
	"bridge/internal/stats"
	"bridge/internal/trace"
)

// NodeID identifies a processor node. The Bridge Server conventionally runs
// on its own node; LFS instances run on nodes with disks.
type NodeID int

// Addr names a message port: a node plus a port name unique on that node.
type Addr struct {
	Node NodeID
	Port string
}

func (a Addr) String() string { return fmt.Sprintf("n%d/%s", a.Node, a.Port) }

// Message is the unit of communication. Body carries a protocol-specific
// request or response struct; Size is the payload size in bytes used by the
// bandwidth model (header overhead is added by the network).
type Message struct {
	From  Addr   // sender's reply address
	ReqID uint64 // request/response correlation; 0 for one-way messages
	Body  any
	Size  int

	// Trace and Span causally link the message to the client operation that
	// caused it: Trace is the end-to-end trace ID, Span the sender's span.
	// Zero when observability is off. Stamped by Client.Send/Start/Reply.
	Trace obs.TraceID
	Span  obs.SpanID
	// AvailAt is the virtual time the message became deliverable at its
	// destination (send time plus modeled transfer delay), stamped by the
	// network so receivers can attribute queue wait separately from service.
	AvailAt time.Duration
}

// Config holds the communication cost model.
type Config struct {
	// LocalLatency is the queue-transfer delay between processes on the
	// same node (shared-memory message).
	LocalLatency time.Duration
	// RemoteLatency is the base delay for a message crossing nodes.
	RemoteLatency time.Duration
	// BytesPerSec is the internode bandwidth; 0 means infinite.
	BytesPerSec int64
	// SendCPU and RecvCPU are per-message processor charges, paid by the
	// sending and receiving process respectively.
	SendCPU time.Duration
	RecvCPU time.Duration
	// HeaderBytes is added to every message's Size for the bandwidth
	// model.
	HeaderBytes int
}

// DefaultConfig approximates Butterfly-class communication circa 1988:
// millisecond-scale message handling and ~4 MB/s interconnect bandwidth.
func DefaultConfig() Config {
	return Config{
		LocalLatency:  100 * time.Microsecond,
		RemoteLatency: 500 * time.Microsecond,
		BytesPerSec:   4 << 20,
		SendCPU:       800 * time.Microsecond,
		RecvCPU:       800 * time.Microsecond,
		HeaderBytes:   32,
	}
}

// ErrNoPort is returned by Send when the destination address has never been
// registered. Sends to a closed (failed) port are dropped silently, like a
// network: the caller discovers the failure by timeout.
var ErrNoPort = errors.New("msg: no such port")

// Fate is a fault hook's verdict on one message transmission.
type Fate struct {
	// Drop discards the message silently; the sender cannot tell (as on a
	// lossy network).
	Drop bool
	// ExtraDelay is added to the modeled transfer delay.
	ExtraDelay time.Duration
	// Duplicates is the number of extra copies delivered (retransmission
	// artifacts); receivers must be prepared to dedup.
	Duplicates int
}

// FaultHook is consulted on every Send when installed with SetFault. It
// decides the fate of each message from the current simulated time and the
// endpoints; implementations must be deterministic under the virtual clock
// for chaos runs to replay exactly.
type FaultHook interface {
	Deliver(now time.Duration, from NodeID, to Addr, m *Message) Fate
}

// Network connects ports and applies the cost model.
type Network struct {
	rt     sim.Runtime
	cfg    Config
	stats  *stats.Counters
	tracer *trace.Tracer // nil = tracing off
	rec    *obs.Recorder // nil = observability off
	fault  FaultHook     // nil = no fault injection

	m netMetrics

	mu    sync.Mutex
	ports map[Addr]*Port
}

// netMetrics are the network's typed metric handles, registered once at
// construction.
type netMetrics struct {
	sent, local, remote          obs.Counter
	bytes, remoteBytes           obs.Counter
	faultDropped, faultDuplicate obs.Counter
}

// NewNetwork creates a network over the given runtime with the given cost
// model.
func NewNetwork(rt sim.Runtime, cfg Config) *Network {
	st := stats.New()
	reg := st.Registry()
	return &Network{rt: rt, cfg: cfg, stats: st, ports: make(map[Addr]*Port), m: netMetrics{
		sent:           reg.Counter("msg.sent", "msgs", "messages transmitted"),
		local:          reg.Counter("msg.local", "msgs", "messages between processes on the same node"),
		remote:         reg.Counter("msg.remote", "msgs", "messages crossing nodes"),
		bytes:          reg.Counter("msg.bytes", "bytes", "payload plus header bytes transmitted"),
		remoteBytes:    reg.Counter("msg.remote_bytes", "bytes", "bytes crossing the interconnect"),
		faultDropped:   reg.Counter("msg.fault_dropped", "msgs", "messages dropped by the fault injector"),
		faultDuplicate: reg.Counter("msg.fault_duplicated", "msgs", "duplicate deliveries injected by the fault injector"),
	}}
}

// Runtime returns the underlying runtime.
func (n *Network) Runtime() sim.Runtime { return n.rt }

// Config returns the cost model.
func (n *Network) Config() Config { return n.cfg }

// Stats returns the network's counter registry (messages, bytes, local vs
// remote traffic).
func (n *Network) Stats() *stats.Counters { return n.stats }

// SetTracer enables event tracing of every Send (nil disables). Set it
// before the simulation starts.
func (n *Network) SetTracer(t *trace.Tracer) { n.tracer = t }

// Tracer returns the installed tracer (nil when tracing is off), so layers
// built on the network can emit events onto the same timeline.
func (n *Network) Tracer() *trace.Tracer { return n.tracer }

// SetRecorder installs the observability recorder (nil disables). Set it
// before the simulation starts. Layers built on the network fetch it with
// Recorder to open spans on the same timeline.
func (n *Network) SetRecorder(r *obs.Recorder) { n.rec = r }

// Recorder returns the installed span recorder (nil when observability is
// off; a nil *obs.Recorder is safe to use and records nothing).
func (n *Network) Recorder() *obs.Recorder { return n.rec }

// SetFault installs a fault hook consulted on every Send (nil removes it).
// Set it before the simulation starts.
func (n *Network) SetFault(h FaultHook) { n.fault = h }

// NewPort registers a port at addr. It panics if the address is already
// registered and still open, since that is always a wiring bug. A closed
// port (a failed node's service) may be re-registered: that is how a
// restarted node comes back.
func (n *Network) NewPort(addr Addr) *Port {
	n.mu.Lock()
	defer n.mu.Unlock()
	if dup, ok := n.ports[addr]; ok && !dup.isClosed() {
		panic(fmt.Sprintf("msg: duplicate port %v", addr))
	}
	p := &Port{net: n, addr: addr, q: n.rt.NewQueue(addr.String())}
	n.ports[addr] = p
	return p
}

// lookup returns the port at addr, or nil.
func (n *Network) lookup(addr Addr) *Port {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ports[addr]
}

// delay returns the transfer delay for a message of the given payload size.
func (n *Network) delay(from NodeID, to NodeID, size int) time.Duration {
	if from == to {
		return n.cfg.LocalLatency
	}
	d := n.cfg.RemoteLatency
	if n.cfg.BytesPerSec > 0 {
		bytes := int64(size + n.cfg.HeaderBytes)
		d += time.Duration(bytes * int64(time.Second) / n.cfg.BytesPerSec)
	}
	return d
}

// Send transmits m from fromNode to the port at to. The calling process is
// charged SendCPU. Unknown destinations return ErrNoPort; closed
// destinations drop the message silently.
func (n *Network) Send(p sim.Proc, fromNode NodeID, to Addr, m *Message) error {
	if n.cfg.SendCPU > 0 {
		p.Sleep(n.cfg.SendCPU)
	}
	dst := n.lookup(to)
	if dst == nil {
		return fmt.Errorf("%w: %v", ErrNoPort, to)
	}
	n.m.sent.Add(1)
	n.m.bytes.Add(int64(m.Size + n.cfg.HeaderBytes))
	if fromNode == to.Node {
		n.m.local.Add(1)
	} else {
		n.m.remote.Add(1)
		n.m.remoteBytes.Add(int64(m.Size + n.cfg.HeaderBytes))
	}
	if n.tracer != nil {
		n.tracer.Emitf(n.rt.Now(), "msg.send", "n%d -> %v %T (%dB)", fromNode, to, m.Body, m.Size)
	}
	d := n.delay(fromNode, to.Node, m.Size)
	if n.fault != nil {
		fate := n.fault.Deliver(n.rt.Now(), fromNode, to, m)
		if fate.Drop {
			n.m.faultDropped.Add(1)
			if n.rec != nil {
				n.rec.Event(n.rt.Now(), m.Trace, "net.drop", fmt.Sprintf("n%d -> %v %T", fromNode, to, m.Body))
			}
			return nil
		}
		d += fate.ExtraDelay
		m.AvailAt = n.rt.Now() + d
		for i := 0; i < fate.Duplicates; i++ {
			n.m.faultDuplicate.Add(1)
			dst.q.SendDelayed(m, d)
		}
	} else {
		m.AvailAt = n.rt.Now() + d
	}
	dst.q.SendDelayed(m, d)
	return nil
}

// QueueWait returns how long a just-received message waited in its
// destination queue beyond the modeled transfer delay: the gap between its
// arrival (AvailAt) and service start (now, minus the RecvCPU charge Recv
// already applied). Zero for unstamped messages.
func (n *Network) QueueWait(now time.Duration, m *Message) time.Duration {
	if m.AvailAt == 0 {
		return 0
	}
	w := now - n.cfg.RecvCPU - m.AvailAt
	if w < 0 {
		w = 0
	}
	return w
}

// Port is a receive endpoint.
type Port struct {
	net  *Network
	addr Addr
	q    sim.Queue

	mu     sync.Mutex
	closed bool
}

// isClosed reports whether Close has been called on this port.
func (p *Port) isClosed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// Addr returns the port's address.
func (p *Port) Addr() Addr { return p.addr }

// QueueLen returns the number of messages waiting in the port's queue —
// the per-node queue-depth gauge sampled by the observability sampler.
func (p *Port) QueueLen() int { return p.q.Len() }

// Recv blocks until a message arrives; ok is false once the port is closed
// and drained. The calling process is charged RecvCPU per message.
func (p *Port) Recv(proc sim.Proc) (*Message, bool) {
	v, ok := p.q.Recv(proc)
	if !ok {
		return nil, false
	}
	if p.net.cfg.RecvCPU > 0 {
		proc.Sleep(p.net.cfg.RecvCPU)
	}
	return v.(*Message), true
}

// RecvTimeout is Recv with a deadline.
func (p *Port) RecvTimeout(proc sim.Proc, d time.Duration) (m *Message, ok bool, timedOut bool) {
	v, ok, timedOut := p.q.RecvTimeout(proc, d)
	if !ok {
		return nil, false, timedOut
	}
	if p.net.cfg.RecvCPU > 0 {
		proc.Sleep(p.net.cfg.RecvCPU)
	}
	return v.(*Message), true, false
}

// TryRecv returns a message if one is available without blocking.
func (p *Port) TryRecv(proc sim.Proc) (m *Message, ok bool) {
	v, ok, _ := p.q.TryRecv(proc)
	if !ok {
		return nil, false
	}
	if p.net.cfg.RecvCPU > 0 {
		proc.Sleep(p.net.cfg.RecvCPU)
	}
	return v.(*Message), true
}

// Close closes the port; pending receivers unblock and future sends to it
// are dropped. Used by the failure injector to "kill" a node's services.
// A closed port's address may be re-registered with NewPort, which is how
// a restarted node brings its services back.
func (p *Port) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.q.Close()
}
