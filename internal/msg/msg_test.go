package msg

import (
	"errors"
	"testing"
	"time"

	"bridge/internal/sim"
)

// zeroCPU is a cost model with pure latency and no CPU charges, so timing
// assertions are exact.
func zeroCPU() Config {
	return Config{
		LocalLatency:  1 * time.Millisecond,
		RemoteLatency: 5 * time.Millisecond,
		BytesPerSec:   1 << 20, // 1 MiB/s
		HeaderBytes:   0,
	}
}

func TestSendLocalVsRemoteLatency(t *testing.T) {
	rt := sim.NewVirtual()
	net := NewNetwork(rt, zeroCPU())
	local := net.NewPort(Addr{Node: 1, Port: "local"})
	remote := net.NewPort(Addr{Node: 2, Port: "remote"})

	rt.Go("recv-local", func(p sim.Proc) {
		if _, ok := local.Recv(p); !ok {
			t.Error("local recv closed")
		}
		if p.Now() != 1*time.Millisecond {
			t.Errorf("local delivery at %v, want 1ms", p.Now())
		}
	})
	rt.Go("recv-remote", func(p sim.Proc) {
		if _, ok := remote.Recv(p); !ok {
			t.Error("remote recv closed")
		}
		// 5ms base + 1 MiB/s over 1024 bytes = ~0.9766ms.
		want := 5*time.Millisecond + time.Duration(1024*int64(time.Second)/(1<<20))
		if p.Now() != want {
			t.Errorf("remote delivery at %v, want %v", p.Now(), want)
		}
	})
	rt.Go("send", func(p sim.Proc) {
		if err := net.Send(p, 1, local.Addr(), &Message{Size: 1024}); err != nil {
			t.Errorf("local send: %v", err)
		}
		if err := net.Send(p, 1, remote.Addr(), &Message{Size: 1024}); err != nil {
			t.Errorf("remote send: %v", err)
		}
	})
	if err := rt.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
}

func TestSendUnknownPort(t *testing.T) {
	rt := sim.NewVirtual()
	net := NewNetwork(rt, zeroCPU())
	err := rt.Run("p", func(p sim.Proc) {
		err := net.Send(p, 0, Addr{Node: 9, Port: "nope"}, &Message{})
		if !errors.Is(err, ErrNoPort) {
			t.Errorf("Send = %v, want ErrNoPort", err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestSendCPUCharged(t *testing.T) {
	cfg := zeroCPU()
	cfg.SendCPU = 2 * time.Millisecond
	cfg.RecvCPU = 3 * time.Millisecond
	rt := sim.NewVirtual()
	net := NewNetwork(rt, cfg)
	port := net.NewPort(Addr{Node: 1, Port: "p"})
	rt.Go("recv", func(p sim.Proc) {
		port.Recv(p)
		// local latency 1ms; message sent at 2ms (after SendCPU);
		// arrival 3ms; RecvCPU 3ms -> 6ms.
		if p.Now() != 6*time.Millisecond {
			t.Errorf("recv done at %v, want 6ms", p.Now())
		}
	})
	rt.Go("send", func(p sim.Proc) {
		net.Send(p, 1, port.Addr(), &Message{})
		if p.Now() != 2*time.Millisecond {
			t.Errorf("send returned at %v, want 2ms", p.Now())
		}
	})
	if err := rt.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
}

func TestCallRoundTrip(t *testing.T) {
	rt := sim.NewVirtual()
	net := NewNetwork(rt, zeroCPU())
	srvPort := net.NewPort(Addr{Node: 0, Port: "echo"})
	rt.Go("server", func(p sim.Proc) {
		Serve(p, net, 0, srvPort, func(proc sim.Proc, req *Message) (any, int) {
			return "echo:" + req.Body.(string), 64
		})
	})
	rt.Go("client", func(p sim.Proc) {
		defer srvPort.Close()
		c := NewClient(p, net, 3, "cli")
		m, err := c.Call(srvPort.Addr(), "hi", 16)
		if err != nil {
			t.Errorf("Call: %v", err)
			return
		}
		if m.Body != "echo:hi" {
			t.Errorf("reply = %v, want echo:hi", m.Body)
		}
	})
	if err := rt.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
}

func TestStartGatherOverlapped(t *testing.T) {
	rt := sim.NewVirtual()
	net := NewNetwork(rt, zeroCPU())
	// Three servers with different response delays; replies arrive out of
	// order but Gather returns them in request order.
	delays := []time.Duration{30 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond}
	addrs := make([]Addr, len(delays))
	for i, d := range delays {
		d := d
		port := net.NewPort(Addr{Node: NodeID(i + 1), Port: "srv"})
		addrs[i] = port.Addr()
		rt.Go("server", func(p sim.Proc) {
			req, ok := port.Recv(p)
			if !ok {
				return
			}
			p.Sleep(d)
			net.Send(p, port.Addr().Node, req.From, &Message{ReqID: req.ReqID, Body: int(d / time.Millisecond)})
		})
	}
	rt.Go("client", func(p sim.Proc) {
		c := NewClient(p, net, 0, "cli")
		ids := make([]uint64, len(addrs))
		for i, a := range addrs {
			id, err := c.Start(a, i, 8)
			if err != nil {
				t.Errorf("Start: %v", err)
				return
			}
			ids[i] = id
		}
		ms, err := c.Gather(ids)
		if err != nil {
			t.Errorf("Gather: %v", err)
			return
		}
		want := []int{30, 10, 20}
		for i, m := range ms {
			if m.Body != want[i] {
				t.Errorf("reply %d = %v, want %v", i, m.Body, want[i])
			}
		}
		// Total elapsed should be bounded by the max delay (overlapped),
		// not the sum (sequential).
		if p.Now() > 45*time.Millisecond {
			t.Errorf("gather took %v; requests were not overlapped", p.Now())
		}
	})
	if err := rt.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
}

func TestCallTimeoutOnDeadServer(t *testing.T) {
	rt := sim.NewVirtual()
	net := NewNetwork(rt, zeroCPU())
	dead := net.NewPort(Addr{Node: 5, Port: "lfs"})
	dead.Close() // node failure: port exists but drops everything
	err := rt.Run("client", func(p sim.Proc) {
		c := NewClient(p, net, 0, "cli")
		_, err := c.CallTimeout(dead.Addr(), "req", 8, 50*time.Millisecond)
		if !errors.Is(err, ErrTimeout) {
			t.Errorf("CallTimeout = %v, want ErrTimeout", err)
		}
		if p.Now() < 50*time.Millisecond {
			t.Errorf("timed out at %v, want >= 50ms", p.Now())
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestReplyHelper(t *testing.T) {
	rt := sim.NewVirtual()
	net := NewNetwork(rt, zeroCPU())
	srvPort := net.NewPort(Addr{Node: 0, Port: "srv"})
	rt.Go("server", func(p sim.Proc) {
		sc := NewClient(p, net, 0, "srv-cli")
		req, ok := srvPort.Recv(p)
		if !ok {
			return
		}
		if err := sc.Reply(req, "pong", 8); err != nil {
			t.Errorf("Reply: %v", err)
		}
	})
	rt.Go("client", func(p sim.Proc) {
		c := NewClient(p, net, 1, "cli")
		m, err := c.Call(srvPort.Addr(), "ping", 8)
		if err != nil {
			t.Errorf("Call: %v", err)
			return
		}
		if m.Body != "pong" {
			t.Errorf("reply = %v, want pong", m.Body)
		}
	})
	if err := rt.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
}

func TestNetworkStats(t *testing.T) {
	rt := sim.NewVirtual()
	net := NewNetwork(rt, zeroCPU())
	a := net.NewPort(Addr{Node: 1, Port: "a"})
	b := net.NewPort(Addr{Node: 2, Port: "b"})
	err := rt.Run("p", func(p sim.Proc) {
		net.Send(p, 1, a.Addr(), &Message{Size: 100}) // local
		net.Send(p, 1, b.Addr(), &Message{Size: 100}) // remote
		a.Recv(p)
		b.Recv(p)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	s := net.Stats()
	if got := s.Get("msg.sent"); got != 2 {
		t.Errorf("msg.sent = %d, want 2", got)
	}
	if got := s.Get("msg.local"); got != 1 {
		t.Errorf("msg.local = %d, want 1", got)
	}
	if got := s.Get("msg.remote"); got != 1 {
		t.Errorf("msg.remote = %d, want 1", got)
	}
}

func TestDuplicatePortPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on duplicate port")
		}
	}()
	rt := sim.NewVirtual()
	net := NewNetwork(rt, zeroCPU())
	net.NewPort(Addr{Node: 0, Port: "x"})
	net.NewPort(Addr{Node: 0, Port: "x"})
}

func TestGatherTimeoutPartialFailure(t *testing.T) {
	rt := sim.NewVirtual()
	net := NewNetwork(rt, zeroCPU())
	alive := net.NewPort(Addr{Node: 1, Port: "alive"})
	deadPort := net.NewPort(Addr{Node: 2, Port: "dead"})
	deadPort.Close()
	rt.Go("server", func(p sim.Proc) {
		req, ok := alive.Recv(p)
		if !ok {
			return
		}
		net.Send(p, 1, req.From, &Message{ReqID: req.ReqID, Body: "ok"})
	})
	rt.Go("client", func(p sim.Proc) {
		c := NewClient(p, net, 0, "cli")
		id1, _ := c.Start(alive.Addr(), "r", 4)
		id2, _ := c.Start(deadPort.Addr(), "r", 4)
		ms, err := c.GatherTimeout([]uint64{id1, id2}, 40*time.Millisecond)
		if !errors.Is(err, ErrTimeout) {
			t.Errorf("GatherTimeout err = %v, want ErrTimeout", err)
		}
		if ms[0] == nil || ms[0].Body != "ok" {
			t.Errorf("live reply = %v, want ok", ms[0])
		}
		if ms[1] != nil {
			t.Errorf("dead reply = %v, want nil", ms[1])
		}
	})
	if err := rt.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
}
