package msg

import (
	"sort"
	"testing"

	"bridge/internal/sim"
)

// BenchmarkRPCRoundTrip measures the host-side cost of one Call through
// the cost-modeled network (two messages, correlation, CPU charges).
func BenchmarkRPCRoundTrip(b *testing.B) {
	rt := sim.NewVirtual()
	net := NewNetwork(rt, DefaultConfig())
	srv := net.NewPort(Addr{Node: 1, Port: "srv"})
	n := b.N
	rt.Go("server", func(p sim.Proc) {
		Serve(p, net, 1, srv, func(proc sim.Proc, req *Message) (any, int) {
			return req.Body, 8
		})
	})
	rt.Go("client", func(p sim.Proc) {
		defer srv.Close()
		c := NewClient(p, net, 0, "cli")
		for i := 0; i < n; i++ {
			if _, err := c.Call(srv.Addr(), i, 8); err != nil {
				b.Errorf("Call: %v", err)
				return
			}
		}
	})
	b.ResetTimer()
	if err := rt.Wait(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkScatterGather measures overlapped fan-out to 8 servers.
func BenchmarkScatterGather(b *testing.B) {
	rt := sim.NewVirtual()
	net := NewNetwork(rt, DefaultConfig())
	const fan = 8
	addrs := make([]Addr, fan)
	for i := 0; i < fan; i++ {
		port := net.NewPort(Addr{Node: NodeID(i + 1), Port: "srv"})
		addrs[i] = port.Addr()
		i := i
		rt.Go("server", func(p sim.Proc) {
			Serve(p, net, NodeID(i+1), port, func(proc sim.Proc, req *Message) (any, int) {
				return req.Body, 8
			})
		})
	}
	n := b.N
	rt.Go("client", func(p sim.Proc) {
		c := NewClient(p, net, 0, "cli")
		for i := 0; i < n; i++ {
			ids := make([]uint64, fan)
			for j, a := range addrs {
				id, err := c.Start(a, j, 8)
				if err != nil {
					b.Errorf("Start: %v", err)
					return
				}
				ids[j] = id
			}
			if _, err := c.Gather(ids); err != nil {
				b.Errorf("Gather: %v", err)
				return
			}
		}
		for _, a := range addrs {
			_ = a
		}
		// Close all server ports so they exit, in address order: close
		// order decides the order their processes unblock.
		net.mu.Lock()
		ports := make([]*Port, 0, len(net.ports))
		for _, pt := range net.ports {
			ports = append(ports, pt)
		}
		net.mu.Unlock()
		sort.Slice(ports, func(i, j int) bool { return ports[i].Addr().String() < ports[j].Addr().String() })
		for _, pt := range ports {
			if pt.Addr().Port == "srv" {
				pt.Close()
			}
		}
	})
	b.ResetTimer()
	if err := rt.Wait(); err != nil {
		b.Fatal(err)
	}
}
