package msg

import (
	"errors"
	"fmt"
	"time"

	"bridge/internal/obs"
	"bridge/internal/sim"
)

// ErrTimeout is returned by CallTimeout and GatherTimeout when the deadline
// expires before the reply arrives — typically because the destination node
// has failed.
var ErrTimeout = errors.New("msg: call timed out")

// ErrClosed is returned when the client's reply port is closed while
// waiting, which happens on simulation shutdown or deadlock unwinding.
var ErrClosed = errors.New("msg: reply port closed")

// Client is an RPC endpoint for one process: a private reply port plus
// request/response correlation. A Client must only be used by the process
// that created it.
type Client struct {
	net     *Network
	node    NodeID
	port    *Port
	proc    sim.Proc
	nextReq uint64
	pending map[uint64]*Message
	// discard holds correlation ids the caller abandoned with Discard;
	// their replies are dropped on receipt instead of parked in pending.
	// Bounded by discardCap (FIFO eviction via discardQ) because an
	// abandoned request's reply often never arrives at all — the request
	// or reply was dropped by the network — and the entry would otherwise
	// leak forever.
	discard  map[uint64]struct{}
	discardQ []uint64

	// trace and span are the current observability context; every outgoing
	// message is stamped with them (see SetTrace). Zero when untraced.
	trace obs.TraceID
	span  obs.SpanID
}

// discardCap bounds the abandoned-request set. Evicting a live entry only
// matters if its reply later arrives, which then parks in pending like any
// other stale reply; the cap only needs to cover replies that may still be
// in flight.
const discardCap = 1024

// NewClient creates a client for proc, homed on the given node. The name
// must be unique on that node.
func NewClient(proc sim.Proc, net *Network, node NodeID, name string) *Client {
	return &Client{
		net:     net,
		node:    node,
		port:    net.NewPort(Addr{Node: node, Port: name}),
		proc:    proc,
		pending: make(map[uint64]*Message),
	}
}

// SetTrace sets the observability context stamped onto every subsequent
// outgoing message: the end-to-end trace ID and the caller's current span.
// Call SetTrace(0, 0) to clear it when the traced operation completes.
// Messages started under one context keep it even if the context changes
// before their replies arrive (an async prefetch stays attributed to the
// operation that started it).
func (c *Client) SetTrace(t obs.TraceID, s obs.SpanID) {
	c.trace, c.span = t, s
}

// Node returns the node the client is homed on.
func (c *Client) Node() NodeID { return c.node }

// Addr returns the client's reply address.
func (c *Client) Addr() Addr { return c.port.Addr() }

// Proc returns the owning process.
func (c *Client) Proc() sim.Proc { return c.proc }

// Net returns the network.
func (c *Client) Net() *Network { return c.net }

// Send transmits a one-way message (ReqID 0); no reply is expected.
func (c *Client) Send(to Addr, body any, size int) error {
	return c.net.Send(c.proc, c.node, to, &Message{From: c.Addr(), Body: body, Size: size, Trace: c.trace, Span: c.span})
}

// Start sends a request and returns its correlation id without waiting for
// the reply; use Await or Gather to collect it. This is how the Bridge
// Server and tools overlap operations on many LFS instances.
func (c *Client) Start(to Addr, body any, size int) (uint64, error) {
	c.nextReq++
	id := c.nextReq
	err := c.net.Send(c.proc, c.node, to, &Message{From: c.Addr(), ReqID: id, Body: body, Size: size, Trace: c.trace, Span: c.span})
	if err != nil {
		return 0, err
	}
	return id, nil
}

// Discard abandons an outstanding request started with Start: a reply
// already parked in the pending set is dropped, and a future reply is
// dropped on receipt. Callers that start requests they may never await
// (an invalidated read-ahead prefetch, a retransmitted call's original)
// must discard them so stale replies cannot accumulate or be mistaken
// for current ones.
func (c *Client) Discard(id uint64) {
	if _, ok := c.pending[id]; ok {
		delete(c.pending, id)
		return
	}
	if c.discard == nil {
		c.discard = make(map[uint64]struct{})
	}
	if _, ok := c.discard[id]; ok {
		return
	}
	// Evict oldest-first past the cap; queue entries already resolved by a
	// reply (removed from the map in park) are skipped for free.
	for len(c.discard) >= discardCap && len(c.discardQ) > 0 {
		old := c.discardQ[0]
		c.discardQ = c.discardQ[1:]
		delete(c.discard, old)
	}
	c.discard[id] = struct{}{}
	c.discardQ = append(c.discardQ, id)
	if len(c.discardQ) >= 2*discardCap {
		// Compact queue slots whose entries a reply already resolved, so
		// the queue stays O(discardCap) even when replies do arrive.
		live := c.discardQ[:0]
		for _, q := range c.discardQ {
			if _, ok := c.discard[q]; ok {
				live = append(live, q)
			}
		}
		c.discardQ = live
	}
}

// park stores a reply for a later Await, unless its id was discarded.
func (c *Client) park(m *Message) {
	if _, dead := c.discard[m.ReqID]; dead {
		delete(c.discard, m.ReqID)
		return
	}
	c.pending[m.ReqID] = m
}

// Await blocks until the reply with the given correlation id arrives.
func (c *Client) Await(id uint64) (*Message, error) {
	if m, ok := c.pending[id]; ok {
		delete(c.pending, id)
		return m, nil
	}
	for {
		m, ok := c.port.Recv(c.proc)
		if !ok {
			return nil, ErrClosed
		}
		if m.ReqID == id {
			return m, nil
		}
		c.park(m)
	}
}

// AwaitTimeout is Await with a deadline across the whole wait.
func (c *Client) AwaitTimeout(id uint64, d time.Duration) (*Message, error) {
	if m, ok := c.pending[id]; ok {
		delete(c.pending, id)
		return m, nil
	}
	deadline := c.proc.Now() + d
	for {
		remain := deadline - c.proc.Now()
		if remain < 0 {
			remain = 0
		}
		m, ok, timedOut := c.port.RecvTimeout(c.proc, remain)
		if timedOut {
			return nil, fmt.Errorf("%w: req %d", ErrTimeout, id)
		}
		if !ok {
			return nil, ErrClosed
		}
		if m.ReqID == id {
			return m, nil
		}
		c.park(m)
	}
}

// Call sends a request and blocks for its reply.
func (c *Client) Call(to Addr, body any, size int) (*Message, error) {
	id, err := c.Start(to, body, size)
	if err != nil {
		return nil, err
	}
	return c.Await(id)
}

// CallTimeout is Call with a deadline on the reply.
func (c *Client) CallTimeout(to Addr, body any, size int, d time.Duration) (*Message, error) {
	id, err := c.Start(to, body, size)
	if err != nil {
		return nil, err
	}
	return c.AwaitTimeout(id, d)
}

// Gather collects the replies for all the given correlation ids, in id
// order.
func (c *Client) Gather(ids []uint64) ([]*Message, error) {
	out := make([]*Message, len(ids))
	for i, id := range ids {
		m, err := c.Await(id)
		if err != nil {
			return nil, err
		}
		out[i] = m
	}
	return out, nil
}

// GatherTimeout is Gather with a single deadline across all replies.
// Replies that arrived in time are returned even when others timed out; the
// error reports the first failure.
func (c *Client) GatherTimeout(ids []uint64, d time.Duration) ([]*Message, error) {
	deadline := c.proc.Now() + d
	out := make([]*Message, len(ids))
	var firstErr error
	for i, id := range ids {
		remain := deadline - c.proc.Now()
		if remain < 0 {
			remain = 0
		}
		m, err := c.AwaitTimeout(id, remain)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		out[i] = m
	}
	return out, firstErr
}

// Reply answers a received request, preserving its correlation id and
// trace context (the reply belongs to the request's trace).
func (c *Client) Reply(req *Message, body any, size int) error {
	return c.net.Send(c.proc, c.node, req.From, &Message{From: c.Addr(), ReqID: req.ReqID, Body: body, Size: size, Trace: req.Trace, Span: req.Span})
}

// Close closes the client's reply port.
func (c *Client) Close() { c.port.Close() }

// Handler processes one request in a Serve loop and returns the reply body
// and its wire size. Returning a nil body suppresses the automatic reply
// (the handler is then responsible for any response).
type Handler func(proc sim.Proc, req *Message) (body any, size int)

// Serve runs a request loop on port until the port closes: receive, handle,
// reply to req.From with the request's correlation id. Used by the LFS
// servers and the Bridge Server.
func Serve(proc sim.Proc, net *Network, node NodeID, port *Port, h Handler) {
	for {
		req, ok := port.Recv(proc)
		if !ok {
			return
		}
		body, size := h(proc, req)
		if body == nil {
			continue
		}
		// Replies to unknown/dead clients are dropped, as on a network.
		_ = net.Send(proc, node, req.From, &Message{
			From:  port.Addr(),
			ReqID: req.ReqID,
			Body:  body,
			Size:  size,
			Trace: req.Trace,
			Span:  req.Span,
		})
	}
}
