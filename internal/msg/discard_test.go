package msg

import (
	"testing"

	"bridge/internal/sim"
)

// TestDiscardSetBounded regresses a leak: abandoned correlation ids whose
// replies never arrive (the request or reply was dropped — the common
// reason for abandoning) used to park in the discard set forever, growing
// without bound over long lossy-network runs.
func TestDiscardSetBounded(t *testing.T) {
	rt := sim.NewVirtual()
	net := NewNetwork(rt, zeroCPU())
	rt.Go("client", func(p sim.Proc) {
		c := NewClient(p, net, 1, "cli")
		defer c.Close()

		// Abandon far more requests than the cap; none ever get a reply.
		for id := uint64(1); id <= 5*discardCap; id++ {
			c.Discard(id)
		}
		if len(c.discard) > discardCap {
			t.Errorf("discard set holds %d entries, cap %d", len(c.discard), discardCap)
		}
		if len(c.discardQ) > 2*discardCap {
			t.Errorf("discard queue holds %d entries, want <= %d", len(c.discardQ), 2*discardCap)
		}
		// Newest entries survive eviction; a late reply to one is still
		// dropped rather than parked in pending.
		newest := uint64(5 * discardCap)
		if _, ok := c.discard[newest]; !ok {
			t.Errorf("newest discarded id %d was evicted before older ones", newest)
		}
		c.park(&Message{ReqID: newest})
		if len(c.pending) != 0 {
			t.Errorf("late reply to a discarded id parked in pending")
		}
		// Entries resolved by replies leave stale queue slots behind; keep
		// discarding and check the queue compacts instead of accumulating.
		for id := uint64(5*discardCap + 1); id <= 20*discardCap; id++ {
			c.Discard(id)
			c.park(&Message{ReqID: id})
		}
		if len(c.discardQ) > 2*discardCap {
			t.Errorf("queue grew to %d entries despite replies resolving them, want <= %d",
				len(c.discardQ), 2*discardCap)
		}
	})
	if err := rt.Wait(); err != nil {
		t.Fatalf("sim: %v", err)
	}
}
