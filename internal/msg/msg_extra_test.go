package msg

import (
	"errors"
	"testing"
	"time"

	"bridge/internal/sim"
)

func TestPortRecvTimeout(t *testing.T) {
	rt := sim.NewVirtual()
	net := NewNetwork(rt, zeroCPU())
	port := net.NewPort(Addr{Node: 1, Port: "p"})
	err := rt.Run("p", func(p sim.Proc) {
		start := p.Now()
		_, ok, timedOut := port.RecvTimeout(p, 25*time.Millisecond)
		if ok || !timedOut {
			t.Errorf("RecvTimeout = ok=%v timedOut=%v", ok, timedOut)
		}
		if d := p.Now() - start; d != 25*time.Millisecond {
			t.Errorf("waited %v, want 25ms", d)
		}
		// With a message pending, no timeout.
		net.Send(p, 1, port.Addr(), &Message{Body: "x"})
		m, ok, timedOut := port.RecvTimeout(p, 25*time.Millisecond)
		if !ok || timedOut || m.Body != "x" {
			t.Errorf("RecvTimeout with message = %v/%v/%v", m, ok, timedOut)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestPortTryRecv(t *testing.T) {
	rt := sim.NewVirtual()
	net := NewNetwork(rt, zeroCPU())
	port := net.NewPort(Addr{Node: 1, Port: "p"})
	err := rt.Run("p", func(p sim.Proc) {
		if _, ok := port.TryRecv(p); ok {
			t.Error("TryRecv on empty port returned ok")
		}
		net.Send(p, 1, port.Addr(), &Message{Body: 7})
		p.Sleep(2 * time.Millisecond) // let the transfer land
		m, ok := port.TryRecv(p)
		if !ok || m.Body != 7 {
			t.Errorf("TryRecv = %v/%v", m, ok)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestClientOneWaySend(t *testing.T) {
	rt := sim.NewVirtual()
	net := NewNetwork(rt, zeroCPU())
	sink := net.NewPort(Addr{Node: 2, Port: "sink"})
	rt.Go("recv", func(p sim.Proc) {
		m, ok := sink.Recv(p)
		if !ok || m.ReqID != 0 || m.Body != "fire-and-forget" {
			t.Errorf("one-way = %+v/%v", m, ok)
		}
	})
	rt.Go("send", func(p sim.Proc) {
		c := NewClient(p, net, 1, "cli")
		if err := c.Send(sink.Addr(), "fire-and-forget", 16); err != nil {
			t.Errorf("Send: %v", err)
		}
	})
	if err := rt.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
}

func TestAwaitBuffersInterleavedReplies(t *testing.T) {
	// Await(id1) while id2's reply arrives first must buffer id2's reply
	// for a later Await.
	rt := sim.NewVirtual()
	net := NewNetwork(rt, zeroCPU())
	srv := net.NewPort(Addr{Node: 1, Port: "srv"})
	rt.Go("server", func(p sim.Proc) {
		// Reply to requests in reverse order of arrival.
		var reqs []*Message
		for i := 0; i < 2; i++ {
			m, ok := srv.Recv(p)
			if !ok {
				return
			}
			reqs = append(reqs, m)
		}
		for i := len(reqs) - 1; i >= 0; i-- {
			net.Send(p, 1, reqs[i].From, &Message{ReqID: reqs[i].ReqID, Body: reqs[i].Body})
		}
	})
	rt.Go("client", func(p sim.Proc) {
		c := NewClient(p, net, 0, "cli")
		id1, _ := c.Start(srv.Addr(), "one", 8)
		id2, _ := c.Start(srv.Addr(), "two", 8)
		m1, err := c.Await(id1)
		if err != nil || m1.Body != "one" {
			t.Errorf("Await(id1) = %v, %v", m1, err)
		}
		m2, err := c.Await(id2)
		if err != nil || m2.Body != "two" {
			t.Errorf("Await(id2) = %v, %v", m2, err)
		}
	})
	if err := rt.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
}

func TestAwaitTimeoutFindsPendingReply(t *testing.T) {
	rt := sim.NewVirtual()
	net := NewNetwork(rt, zeroCPU())
	srv := net.NewPort(Addr{Node: 1, Port: "srv"})
	rt.Go("server", func(p sim.Proc) {
		m, ok := srv.Recv(p)
		if !ok {
			return
		}
		net.Send(p, 1, m.From, &Message{ReqID: m.ReqID, Body: "late-buffered"})
	})
	rt.Go("client", func(p sim.Proc) {
		c := NewClient(p, net, 0, "cli")
		id, _ := c.Start(srv.Addr(), "req", 8)
		// First pull the reply into the pending buffer via a bogus
		// Await that times out.
		if _, err := c.AwaitTimeout(999, 30*time.Millisecond); !errors.Is(err, ErrTimeout) {
			t.Errorf("bogus await = %v, want timeout", err)
		}
		m, err := c.AwaitTimeout(id, time.Millisecond)
		if err != nil || m.Body != "late-buffered" {
			t.Errorf("AwaitTimeout from pending = %v, %v", m, err)
		}
	})
	if err := rt.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
}

func TestClosedClientAwaitErrors(t *testing.T) {
	rt := sim.NewVirtual()
	net := NewNetwork(rt, zeroCPU())
	err := rt.Run("p", func(p sim.Proc) {
		c := NewClient(p, net, 0, "cli")
		c.Close()
		if _, err := c.Await(1); !errors.Is(err, ErrClosed) {
			t.Errorf("Await on closed = %v, want ErrClosed", err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestBandwidthScalesWithSize(t *testing.T) {
	cfg := zeroCPU()
	rt := sim.NewVirtual()
	net := NewNetwork(rt, cfg)
	port := net.NewPort(Addr{Node: 2, Port: "p"})
	err := rt.Run("p", func(p sim.Proc) {
		net.Send(p, 1, port.Addr(), &Message{Size: 1 << 20}) // 1 MiB at 1 MiB/s
		start := p.Now()
		port.Recv(p)
		if d := p.Now() - start; d < time.Second {
			t.Errorf("1 MiB transfer took %v, want >= 1s at 1 MiB/s", d)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}
