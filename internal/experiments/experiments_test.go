package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// tinyScale keeps the experiment tests fast while preserving structure.
func tinyScale() Config {
	c := PaperScale()
	c.Ps = []int{2, 4}
	c.Records = 64
	c.InCore = 8
	return c
}

func TestTable2Shapes(t *testing.T) {
	cfg := tinyScale()
	res, err := Table2(cfg)
	if err != nil {
		t.Fatalf("Table2: %v", err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(res.Points))
	}
	p2, p4 := res.Points[0], res.Points[1]
	// Create grows with p (sequential initiation).
	if p4.CreateTime <= p2.CreateTime {
		t.Errorf("Create not increasing in p: %v -> %v", p2.CreateTime, p4.CreateTime)
	}
	// Open roughly flat in p (parallel stats): within 2x.
	if p4.OpenTime > 2*p2.OpenTime {
		t.Errorf("Open not flat: %v -> %v", p2.OpenTime, p4.OpenTime)
	}
	// Write roughly flat in p.
	if p4.WritePerBlock > 2*p2.WritePerBlock {
		t.Errorf("Write not flat: %v -> %v", p2.WritePerBlock, p4.WritePerBlock)
	}
	// Delete total shrinks roughly with p.
	if p4.DeleteTotal >= p2.DeleteTotal {
		t.Errorf("Delete not shrinking with p: %v -> %v", p2.DeleteTotal, p4.DeleteTotal)
	}
	// Write ~ two device accesses (30ms) plus messaging: must be in the
	// ballpark of the paper's 31ms.
	if ms := float64(p2.WritePerBlock) / float64(time.Millisecond); ms < 28 || ms > 45 {
		t.Errorf("write per block = %.1fms, expected ~31-40ms", ms)
	}
	// Read well under device latency thanks to track buffering.
	if p2.ReadPerBlock >= 15*time.Millisecond {
		t.Errorf("read per block = %v, want < 15ms", p2.ReadPerBlock)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Table 2") {
		t.Error("render missing header")
	}
}

func TestTable3CopyScaling(t *testing.T) {
	cfg := tinyScale()
	rows, err := Table3Copy(cfg)
	if err != nil {
		t.Fatalf("Table3Copy: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Near-linear: p=4 should be meaningfully faster than p=2.
	ratio := float64(rows[0].Time) / float64(rows[1].Time)
	if ratio < 1.5 {
		t.Errorf("copy speedup 2->4 = %.2fx, want >= 1.5x", ratio)
	}
	var buf bytes.Buffer
	RenderCopy(&buf, rows, cfg.Records)
	if !strings.Contains(buf.String(), "Table 3") {
		t.Error("render missing header")
	}
}

func TestTable4SortScaling(t *testing.T) {
	cfg := tinyScale()
	rows, err := Table4Sort(cfg)
	if err != nil {
		t.Fatalf("Table4Sort: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].Total >= rows[0].Total {
		t.Errorf("sort total not improving: p2=%v p4=%v", rows[0].Total, rows[1].Total)
	}
	var buf bytes.Buffer
	RenderSort(&buf, rows, cfg.Records)
	if !strings.Contains(buf.String(), "Table 4") {
		t.Error("render missing header")
	}
}

func TestPlacementAblation(t *testing.T) {
	cfg := tinyScale()
	rows, reorg, err := Placement(cfg)
	if err != nil {
		t.Fatalf("Placement: %v", err)
	}
	theory := func(p int) float64 { // p!/p^p
		f := 1.0
		for i := 2; i <= p; i++ {
			f *= float64(i)
		}
		for i := 0; i < p; i++ {
			f /= float64(p)
		}
		return f
	}
	for _, r := range rows {
		if r.Strategy == "round-robin" && r.DistinctFrac != 1.0 {
			t.Errorf("round-robin distinct fraction = %v", r.DistinctFrac)
		}
		if r.Strategy == "hashed" {
			if want := theory(r.P); r.DistinctFrac > want*1.5+0.05 {
				t.Errorf("p=%d: hashed distinct fraction = %v, theory %v", r.P, r.DistinctFrac, want)
			}
		}
	}
	for _, r := range reorg {
		if r.MovedChunk == 0 {
			t.Errorf("chunked growth moved no blocks at p=%d", r.P)
		}
	}
	var buf bytes.Buffer
	RenderPlacement(&buf, rows, reorg)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestCreateTreeAblation(t *testing.T) {
	cfg := tinyScale()
	cfg.Ps = []int{16}
	rows, err := CreateTree(cfg)
	if err != nil {
		t.Fatalf("CreateTree: %v", err)
	}
	if rows[0].Tree >= rows[0].Sequential {
		t.Errorf("tree create (%v) not faster than sequential (%v) at p=16", rows[0].Tree, rows[0].Sequential)
	}
	var buf bytes.Buffer
	RenderCreateTree(&buf, rows)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestParallelOpenAblation(t *testing.T) {
	cfg := tinyScale()
	rows, err := ParallelOpen(cfg, 4, []int{1, 4, 8})
	if err != nil {
		t.Fatalf("ParallelOpen: %v", err)
	}
	// Throughput improves from t=1 to t=4, then flattens at t=8 (virtual
	// parallelism beyond p=4 cannot speed up the disks).
	if rows[1].RecPerSec <= rows[0].RecPerSec {
		t.Errorf("t=4 (%.0f rec/s) not faster than t=1 (%.0f rec/s)", rows[1].RecPerSec, rows[0].RecPerSec)
	}
	if rows[2].RecPerSec > rows[1].RecPerSec*1.5 {
		t.Errorf("t=8 (%.0f rec/s) much faster than t=4 (%.0f rec/s); lock-step missing", rows[2].RecPerSec, rows[1].RecPerSec)
	}
	var buf bytes.Buffer
	RenderParallelOpen(&buf, rows, 4, cfg.Records)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestToolVsNaiveAblation(t *testing.T) {
	cfg := tinyScale()
	rows, err := ToolVsNaive(cfg, 4)
	if err != nil {
		t.Fatalf("ToolVsNaive: %v", err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	// The tool must win against the paper's three methods. The batched
	// naive row (rows[2]) is exempt: at tiny scale the tool's startup
	// broadcast dominates and batching legitimately edges it out.
	tool := rows[4]
	for _, r := range []AccessMethodRow{rows[0], rows[1], rows[3]} {
		if tool.Time >= r.Time {
			t.Errorf("tool copy (%v) not faster than %s (%v)", tool.Time, r.Method, r.Time)
		}
	}
	// Batching the naive interface must clearly beat the per-block one.
	naive, batched := rows[1], rows[2]
	if batched.Time*2 >= naive.Time {
		t.Errorf("batched naive copy (%v) not ≥2x faster than per-block naive (%v)", batched.Time, naive.Time)
	}
	var buf bytes.Buffer
	RenderAccessMethods(&buf, rows, cfg.Records)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestUtilization(t *testing.T) {
	cfg := tinyScale()
	rows, err := Utilization(cfg, 4)
	if err != nil {
		t.Fatalf("Utilization: %v", err)
	}
	naive, tool := rows[0], rows[1]
	if tool.AvgBusy < 3*naive.AvgBusy {
		t.Errorf("tool utilization (%.2f) not well above naive (%.2f)", tool.AvgBusy, naive.AvgBusy)
	}
	if tool.AvgBusy < 0.5 {
		t.Errorf("tool keeps disks only %.0f%% busy; expected mostly-busy", tool.AvgBusy*100)
	}
	// Load must be balanced: min and max busy close together.
	if tool.MaxBusy-tool.MinBusy > 0.2 {
		t.Errorf("tool disk load imbalanced: min %.2f max %.2f", tool.MinBusy, tool.MaxBusy)
	}
	var buf bytes.Buffer
	RenderUtilization(&buf, rows, 4, cfg.Records)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestDisorderedExperiment(t *testing.T) {
	cfg := tinyScale()
	res, err := Disordered(cfg, 4)
	if err != nil {
		t.Fatalf("Disordered: %v", err)
	}
	if res.RandChain < 5*res.RandRR {
		t.Errorf("disordered random read (%v) not much slower than interleaved (%v)", res.RandChain, res.RandRR)
	}
	if res.SeqChain > 2*res.SeqRR {
		t.Errorf("disordered sequential read (%v) should be comparable to interleaved (%v)", res.SeqChain, res.SeqRR)
	}
	var buf bytes.Buffer
	RenderDisordered(&buf, res)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestModelComparison(t *testing.T) {
	cfg := tinyScale()
	rows, err := ModelComparison(cfg)
	if err != nil {
		t.Fatalf("ModelComparison: %v", err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		e := r.Err()
		if e < -0.6 || e > 0.6 {
			t.Errorf("%s: model error %.0f%% out of range", r.Name, e*100)
		}
	}
	var buf bytes.Buffer
	RenderModel(&buf, rows, 5)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestServerScaling(t *testing.T) {
	cfg := tinyScale()
	rows, err := ServerScaling(cfg, 4, 4)
	if err != nil {
		t.Fatalf("ServerScaling: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// More servers must relieve the bottleneck substantially.
	if rows[1].RecPerSec < rows[0].RecPerSec*1.5 {
		t.Errorf("2 servers (%.0f rec/s) not much faster than 1 (%.0f rec/s)", rows[1].RecPerSec, rows[0].RecPerSec)
	}
	var buf bytes.Buffer
	RenderServerScaling(&buf, rows, 4)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestScrubOverheadExperiment(t *testing.T) {
	cfg := tinyScale()
	cfg.Ps = []int{4}
	pts, err := ScrubOverhead(cfg)
	if err != nil {
		t.Fatalf("ScrubOverhead: %v", err)
	}
	if len(pts) != 1 {
		t.Fatalf("points = %d", len(pts))
	}
	// The scrubber runs only in idle disk time: the hot read path must pay
	// essentially nothing (the PR gate in cmd/bridgeperf is 5%).
	if over := pts[0].Overhead(); over > 0.05 {
		t.Errorf("scrub overhead = %.1f%%, want <= 5%%", over*100)
	}
	var buf bytes.Buffer
	RenderScrubOverhead(&buf, pts, cfg.Records)
	if !strings.Contains(buf.String(), "Scrub overhead") {
		t.Error("render missing header")
	}
}

func TestCorruptionRecoveryExperiment(t *testing.T) {
	cfg := tinyScale()
	pts, err := CorruptionRecovery(cfg)
	if err != nil {
		t.Fatalf("CorruptionRecovery: %v", err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, pt := range pts {
		if pt.Detected != pt.Injected {
			t.Errorf("p=%d: detected %d of %d injected", pt.P, pt.Detected, pt.Injected)
		}
		if pt.Repaired != pt.Injected {
			t.Errorf("p=%d: repaired %d, want %d", pt.P, pt.Repaired, pt.Injected)
		}
		if pt.Residual != 0 {
			t.Errorf("p=%d: %d residual checksum failures after repair", pt.P, pt.Residual)
		}
		if pt.SweepMs <= 0 {
			t.Errorf("p=%d: sweep took no virtual time", pt.P)
		}
	}
	var buf bytes.Buffer
	RenderCorruption(&buf, pts)
	if !strings.Contains(buf.String(), "Corruption recovery") {
		t.Error("render missing header")
	}
}

func TestFaultsAblation(t *testing.T) {
	cfg := tinyScale()
	rep, err := Faults(cfg, 4)
	if err != nil {
		t.Fatalf("Faults: %v", err)
	}
	if !rep.UnprotectedRuined {
		t.Error("unprotected file survived a node failure")
	}
	if !rep.MirrorSurvives {
		t.Error("mirror did not survive")
	}
	if !rep.ParitySurvives {
		t.Error("parity did not survive")
	}
	if rep.MirrorStorageFactor < 1.9 || rep.MirrorStorageFactor > 2.1 {
		t.Errorf("mirror storage factor = %.2f, want ~2.0", rep.MirrorStorageFactor)
	}
	if rep.ParityStorageFactor > 1.6 {
		t.Errorf("parity storage factor = %.2f, want ~p/(p-1)", rep.ParityStorageFactor)
	}
	var buf bytes.Buffer
	RenderFaults(&buf, rep)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestWriteCampaignShapes(t *testing.T) {
	cfg := tinyScale()
	cfg.Ps = []int{4, 8}
	pts, err := WriteCampaign(cfg)
	if err != nil {
		t.Fatalf("WriteCampaign: %v", err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d, want 2", len(pts))
	}
	for _, pt := range pts {
		// Group commit must beat the synchronous append comfortably even
		// at tiny scale.
		if s := pt.WriteSpeedup(); s < 2 {
			t.Errorf("p=%d: write-behind speedup %.2fx, want >= 2x", pt.P, s)
		}
		// The tool-mode delete frees each node's column locally.
		if s := pt.DeleteSpeedup(); s < 2 {
			t.Errorf("p=%d: parallel delete speedup %.2fx, want >= 2x", pt.P, s)
		}
		// RS(p-2, 2) must never store more than the 2x mirror (at p=4 the
		// geometry is RS(2,2), which legitimately matches it).
		if pt.RSOverhead <= 1 || pt.RSOverhead > pt.MirrorOverhead {
			t.Errorf("p=%d: RS overhead %.3fx vs mirror %.1fx", pt.P, pt.RSOverhead, pt.MirrorOverhead)
		}
	}
	// RS(6,2) at p=8 sits near (6+2)/6.
	if o := pts[1].RSOverhead; o < 1.30 || o > 1.40 {
		t.Errorf("RS(6,2) overhead %.3fx, want ~1.33x", o)
	}
}
