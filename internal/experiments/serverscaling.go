package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"bridge/internal/core"
	"bridge/internal/disk"
	"bridge/internal/efs"
	"bridge/internal/lfs"
	"bridge/internal/sim"
	"bridge/internal/workload"
)

// ServerScalingRow measures aggregate naive-interface throughput for one
// Bridge Server count under concurrent clients — the paper's sketched
// remedy for the central server: "If requests to the server are frequent
// enough to cause a bottleneck, the same functionality could be provided
// by a distributed collection of processes."
type ServerScalingRow struct {
	Servers   int
	Clients   int
	Makespan  time.Duration
	RecPerSec float64 // aggregate across all clients
}

// ServerScaling runs `clients` concurrent naive readers, each over its own
// file, against 1, 2, and 4 Bridge Server processes on a p-node cluster.
func ServerScaling(cfg Config, p, clients int) ([]ServerScalingRow, error) {
	cfg.applyDefaults()
	perClient := cfg.Records / clients
	if perClient < 8 {
		perClient = 8
	}
	var rows []ServerScalingRow
	for _, servers := range []int{1, 2, 4} {
		servers := servers
		rt := sim.NewVirtual()
		cl, err := core.StartCluster(rt, core.ClusterConfig{
			P: p,
			Node: lfs.Config{
				DiskBlocks: perClient*clients*2/p + 512,
				Timing:     disk.FixedTiming{Latency: cfg.DiskLatency},
				EFS:        efs.Options{CacheBlocks: cfg.CacheBlocks},
			},
			Servers: servers,
			Server:  core.Config{LFSTimeout: cfg.LFSTimeout},
		})
		if err != nil {
			return nil, err
		}
		var makespan time.Duration
		var firstErr error
		rt.Go("driver", func(proc sim.Proc) {
			defer cl.Stop()
			c := cl.NewClient(proc, 0, "ss-driver")
			defer c.Close()
			// Fill one file per client.
			for i := 0; i < clients; i++ {
				recs := workload.Records(cfg.Seed+int64(i), perClient, cfg.PayloadBytes)
				if err := workload.Fill(proc, c, fmt.Sprintf("f%d", i), recs); err != nil {
					firstErr = err
					return
				}
			}
			// Concurrent readers.
			done := rt.NewQueue("ss-done")
			start := proc.Now()
			for i := 0; i < clients; i++ {
				i := i
				proc.Go(fmt.Sprintf("reader%d", i), func(rp sim.Proc) {
					rc := cl.NewClient(rp, 0, fmt.Sprintf("ss-cli%d", i))
					defer rc.Close()
					name := fmt.Sprintf("f%d", i)
					if _, err := rc.Open(name); err != nil {
						done.Send(err)
						return
					}
					for {
						_, eof, err := rc.SeqRead(name)
						if err != nil {
							done.Send(err)
							return
						}
						if eof {
							done.Send(nil)
							return
						}
					}
				})
			}
			for i := 0; i < clients; i++ {
				v, ok := done.Recv(proc)
				if !ok {
					firstErr = fmt.Errorf("done queue closed")
					return
				}
				if err, isErr := v.(error); isErr && err != nil && firstErr == nil {
					firstErr = err
				}
			}
			makespan = proc.Now() - start
		})
		if err := rt.Wait(); err != nil {
			return nil, err
		}
		if firstErr != nil {
			return nil, fmt.Errorf("serverscaling k=%d: %w", servers, firstErr)
		}
		rows = append(rows, ServerScalingRow{
			Servers:   servers,
			Clients:   clients,
			Makespan:  makespan,
			RecPerSec: recPerSec(perClient*clients, makespan),
		})
	}
	return rows, nil
}

// RenderServerScaling writes the comparison.
func RenderServerScaling(w io.Writer, rows []ServerScalingRow, p int) {
	fmt.Fprintf(w, "Ablation A6: distributed Bridge Servers (%d nodes, %d concurrent naive readers)\n", p, rows[0].Clients)
	fmt.Fprintln(w, `(the paper: "the same functionality could be provided by a distributed collection of processes")`)
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "servers\tmakespan\taggregate rec/s")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%s\t%.0f\n", r.Servers, fmtDur(r.Makespan), r.RecPerSec)
	}
	tw.Flush()
}
