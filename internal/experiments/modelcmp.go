package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"bridge/internal/model"
)

// ModelRow compares one predicted quantity against its simulation.
type ModelRow struct {
	Name      string
	Predicted time.Duration
	Measured  time.Duration
}

// Err returns the relative error of the prediction.
func (r ModelRow) Err() float64 {
	if r.Measured == 0 {
		return 0
	}
	return float64(r.Predicted-r.Measured) / float64(r.Measured)
}

// ModelComparison validates the closed-form analytical model (the
// counterpart of the paper's reference [17]) against the simulator, the
// way the paper reports that "the results we obtain for the constants on
// the Butterfly agree quite nicely with empirical data".
func ModelComparison(cfg Config) ([]ModelRow, error) {
	cfg.applyDefaults()
	m := model.Default()
	m.InCore = cfg.InCore
	m.DiskLatency = cfg.DiskLatency
	var rows []ModelRow

	t2, err := Table2(cfg)
	if err != nil {
		return nil, err
	}
	for _, pt := range t2.Points {
		rows = append(rows,
			ModelRow{fmt.Sprintf("naive read/blk (p=%d)", pt.P), m.NaiveRead(), pt.ReadPerBlock},
			ModelRow{fmt.Sprintf("naive write/blk (p=%d)", pt.P), m.NaiveWrite(), pt.WritePerBlock},
			ModelRow{fmt.Sprintf("delete total (p=%d)", pt.P), m.DeleteTotal(cfg.Records, pt.P), pt.DeleteTotal},
		)
	}
	t3, err := Table3Copy(cfg)
	if err != nil {
		return nil, err
	}
	for _, r := range t3 {
		rows = append(rows, ModelRow{fmt.Sprintf("copy tool (p=%d)", r.P), m.CopyTime(cfg.Records, r.P), r.Time})
	}
	t4, err := Table4Sort(cfg)
	if err != nil {
		return nil, err
	}
	for _, r := range t4 {
		rows = append(rows,
			ModelRow{fmt.Sprintf("sort local (p=%d)", r.P), m.SortLocalTime(cfg.Records, r.P), r.Local},
			ModelRow{fmt.Sprintf("sort merge (p=%d)", r.P), m.SortMergeTime(cfg.Records, r.P), r.Merge},
		)
	}
	return rows, nil
}

// RenderModel writes the comparison table.
func RenderModel(w io.Writer, rows []ModelRow, saturation int) {
	fmt.Fprintln(w, "Analytical model vs simulation (closed forms vs discrete events)")
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "quantity\tpredicted\tsimulated\terror")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%+.0f%%\n", r.Name, fmtDur(r.Predicted), fmtDur(r.Measured), r.Err()*100)
	}
	tw.Flush()
	fmt.Fprintf(w, "token-ring merge saturation width (model): t ≈ %d writers per group\n", saturation)
}
