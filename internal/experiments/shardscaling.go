package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"bridge/internal/core"
	"bridge/internal/disk"
	"bridge/internal/lfs"
	"bridge/internal/sim"
)

// metaScalingReplicas fixes the consensus group size while the shard
// count varies, so the comparison isolates sharding from replication
// overhead.
const metaScalingReplicas = 3

// MetadataScalingRow measures aggregate directory-op throughput — a
// create / stat / stat / delete cycle per file — for one shard-group
// count under concurrent clients. Disks run at zero latency so the
// measurement isolates the metadata path: each shard leader's request
// CPU plus its group's commit round trips, which is exactly what
// sharding multiplies.
type MetadataScalingRow struct {
	Shards    int
	Replicas  int
	Clients   int
	Ops       int
	Makespan  time.Duration
	OpsPerSec float64 // aggregate across all clients
}

// MetadataScaling runs `clients` concurrent metadata-churn clients —
// each cycling create/stat/stat/delete over its own slice of the
// namespace — against the requested shard-group counts at a fixed
// replication factor. The namespace is shared (names hash across all
// groups), so the workload spreads over every shard without
// hand-placing files.
func MetadataScaling(cfg Config, p, clients, filesPerClient int, shardCounts []int) ([]MetadataScalingRow, error) {
	cfg.applyDefaults()
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 4}
	}
	var rows []MetadataScalingRow
	for _, shards := range shardCounts {
		shards := shards
		rt := sim.NewVirtual()
		cl, err := core.StartCluster(rt, core.ClusterConfig{
			P: p,
			Node: lfs.Config{
				DiskBlocks: 4096,
				Timing:     disk.FixedTiming{},
			},
			Servers:  shards,
			Replicas: metaScalingReplicas,
			Server:   core.Config{LFSTimeout: cfg.LFSTimeout},
		})
		if err != nil {
			return nil, err
		}
		var makespan time.Duration
		var firstErr error
		rt.Go("driver", func(proc sim.Proc) {
			defer cl.Stop()
			done := rt.NewQueue("ms-done")
			start := proc.Now()
			for i := 0; i < clients; i++ {
				i := i
				proc.Go(fmt.Sprintf("churn%d", i), func(cp sim.Proc) {
					c := cl.NewClient(cp, 0, fmt.Sprintf("ms-cli%d", i))
					defer c.Close()
					for f := 0; f < filesPerClient; f++ {
						name := fmt.Sprintf("m%d-%d", i, f)
						if _, err := c.Create(name); err != nil {
							done.Send(fmt.Errorf("create %s: %w", name, err))
							return
						}
						for s := 0; s < 2; s++ {
							if _, err := c.Stat(name); err != nil {
								done.Send(fmt.Errorf("stat %s: %w", name, err))
								return
							}
						}
						if _, err := c.Delete(name); err != nil {
							done.Send(fmt.Errorf("delete %s: %w", name, err))
							return
						}
					}
					done.Send(nil)
				})
			}
			for i := 0; i < clients; i++ {
				v, ok := done.Recv(proc)
				if !ok {
					firstErr = fmt.Errorf("done queue closed")
					return
				}
				if err, isErr := v.(error); isErr && err != nil && firstErr == nil {
					firstErr = err
				}
			}
			makespan = proc.Now() - start
		})
		if err := rt.Wait(); err != nil {
			return nil, err
		}
		if firstErr != nil {
			return nil, fmt.Errorf("metadatascaling shards=%d: %w", shards, firstErr)
		}
		ops := clients * filesPerClient * 4 // create + 2 stats + delete
		rows = append(rows, MetadataScalingRow{
			Shards:    shards,
			Replicas:  metaScalingReplicas,
			Clients:   clients,
			Ops:       ops,
			Makespan:  makespan,
			OpsPerSec: recPerSec(ops, makespan),
		})
	}
	return rows, nil
}

// RenderMetadataScaling writes the comparison.
func RenderMetadataScaling(w io.Writer, rows []MetadataScalingRow, p int) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "Sharded directory: metadata throughput vs shard groups (%d nodes, %d clients, Replicas=%d)\n",
		p, rows[0].Clients, rows[0].Replicas)
	fmt.Fprintln(w, "(create/stat/stat/delete cycles; zero-latency disks isolate the metadata path)")
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "shards\tops\tmakespan\tdirectory ops/s")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%s\t%.0f\n", r.Shards, r.Ops, fmtDur(r.Makespan), r.OpsPerSec)
	}
	tw.Flush()
}
