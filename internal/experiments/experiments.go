// Package experiments regenerates every measurable artifact of the Bridge
// paper's evaluation — Table 2 (basic operation costs), Table 3 and its
// records/second figure (the copy tool), Table 4 and its figures (the merge
// sort tool) — plus the ablations the paper argues qualitatively: placement
// strategies (Section 3), binary-tree versus sequential Create initiation
// (Section 4.5), virtual parallelism of the parallel open (Section 4.1),
// tool versus naive versus sequential access (Section 6), and fault
// intolerance with mirroring/parity costs (Section 7).
//
// Every experiment boots a fresh simulated cluster per configuration and
// measures simulated time under the deterministic virtual clock, with
// 15 ms Wren-class disks, exactly as the paper's own methodology (their
// disks were also RAM-backed simulations with a 15 ms sleep).
package experiments

import (
	"fmt"
	"time"

	"bridge/internal/core"
	"bridge/internal/disk"
	"bridge/internal/efs"
	"bridge/internal/lfs"
	"bridge/internal/sim"
	"bridge/internal/workload"
)

// Config scales the experiment suite. The zero value, after defaults, is
// the paper's own configuration: a 10 MB file of 10240 one-block records on
// 15 ms disks.
type Config struct {
	// Ps is the processor sweep. Default {2, 4, 8, 16, 32}.
	Ps []int
	// Records is the workload file size in one-block records. Default
	// 10240 (the paper's 10 MB file). Benchmarks use smaller values.
	Records int
	// PayloadBytes is the record payload size. Default core.PayloadBytes
	// (960, a full block).
	PayloadBytes int
	// DiskLatency is the per-access device delay. Default 15ms.
	DiskLatency time.Duration
	// InCore is the sort tool's in-core buffer in records. Default 512.
	InCore int
	// Seed drives workload generation.
	Seed int64
	// CacheBlocks overrides the per-node EFS block cache (0 = EFS
	// default). Table 2 uses a small cache so sequential reads exercise
	// track buffering rather than whole-file residency.
	CacheBlocks int
	// LFSTimeout is the Bridge Server's failure-detection timeout. The
	// default (1h) dwarfs the longest legitimate full-scale operation;
	// the fault experiment shortens it so failover is responsive.
	LFSTimeout time.Duration
	// ReadAhead enables the Bridge Server's sequential read-ahead cache
	// (windows of ReadAhead stripes). 0 — the default, used by the
	// paper-fidelity experiments — keeps the measured per-block behavior.
	ReadAhead int
	// WriteBehind enables the Bridge Server's group-commit append cache
	// (windows of WriteBehind stripes). 0 — the default, used by the
	// paper-fidelity experiments — keeps every append synchronous.
	WriteBehind int
	// Scrub enables each node's idle-time background scrubber, for the
	// integrity-overhead experiments. Nil — the default — leaves it off.
	Scrub *lfs.ScrubConfig
	// JournalBlocks reserves a per-node write-ahead intent journal of
	// this many blocks, for the durability-overhead experiments. 0 — the
	// default — runs unjournaled volumes.
	JournalBlocks int
}

// raStripes is the read-ahead depth the batched-naive experiments use: two
// stripes buffered per reader, so one window serves while the next
// prefetches.
const raStripes = 2

func (c *Config) applyDefaults() {
	if len(c.Ps) == 0 {
		c.Ps = []int{2, 4, 8, 16, 32}
	}
	if c.Records == 0 {
		c.Records = 10240
	}
	if c.PayloadBytes == 0 {
		c.PayloadBytes = core.PayloadBytes
	}
	if c.DiskLatency == 0 {
		c.DiskLatency = 15 * time.Millisecond
	}
	if c.InCore == 0 {
		c.InCore = 512
	}
	if c.Seed == 0 {
		c.Seed = 1988
	}
	if c.LFSTimeout == 0 {
		c.LFSTimeout = time.Hour
	}
}

// PaperScale returns the paper's full-scale configuration.
func PaperScale() Config {
	var c Config
	c.applyDefaults()
	return c
}

// QuickScale returns a reduced configuration (1/16 of the records, smaller
// in-core buffer to preserve the run/merge structure) that keeps every
// experiment's shape while running quickly; used by `go test -bench`.
func QuickScale() Config {
	c := PaperScale()
	c.Records = 640
	c.InCore = 32
	return c
}

// clusterFor boots a cluster of p storage nodes sized for the workload.
func clusterFor(rt sim.Runtime, p int, cfg Config) (*core.Cluster, error) {
	perNode := cfg.Records/p + 1
	// Source + destination + sort runs in flight + metadata headroom.
	blocks := perNode*5 + 256
	return core.StartCluster(rt, core.ClusterConfig{
		P: p,
		Node: lfs.Config{
			DiskBlocks: blocks,
			Timing:     disk.FixedTiming{Latency: cfg.DiskLatency},
			EFS:        efs.Options{CacheBlocks: cfg.CacheBlocks, JournalBlocks: cfg.JournalBlocks},
			Scrub:      cfg.Scrub,
		},
		// A full-scale delete legitimately takes minutes of simulated
		// time at small p; the failure-detection timeout must dwarf it.
		Server: core.Config{LFSTimeout: cfg.LFSTimeout, ReadAhead: cfg.ReadAhead, WriteBehind: cfg.WriteBehind},
	})
}

// runSim executes fn as a controller process on a fresh cluster of p nodes
// and returns the first error from fn or the simulation.
func runSim(p int, cfg Config, fn func(proc sim.Proc, cl *core.Cluster, c *core.Client) error) error {
	rt := sim.NewVirtual()
	cl, err := clusterFor(rt, p, cfg)
	if err != nil {
		return err
	}
	var fnErr error
	rt.Go("experiment", func(proc sim.Proc) {
		defer cl.Stop()
		c := cl.NewClient(proc, 0, "exp-cli")
		defer c.Close()
		fnErr = fn(proc, cl, c)
	})
	if err := rt.Wait(); err != nil {
		if fnErr != nil {
			return fmt.Errorf("%w (sim: %v)", fnErr, err)
		}
		return err
	}
	return fnErr
}

// fill writes the standard record workload into name.
func fill(proc sim.Proc, c *core.Client, cfg Config, name string) error {
	recs := workload.Records(cfg.Seed, cfg.Records, cfg.PayloadBytes)
	return workload.Fill(proc, c, name, recs)
}

// recPerSec converts a duration for cfg.Records records into a rate.
func recPerSec(records int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(records) / d.Seconds()
}
