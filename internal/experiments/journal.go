package experiments

// The journaling experiment quantifies what crash consistency costs on the
// hot path: the same batched sequential append measured on plain volumes
// and on journaled volumes, where every metadata update is logged as a
// checksummed intent record and group-committed before the home writes go
// down. The journal's group commit exists precisely so this number stays
// small; the perf gate holds it to <=5%.

import (
	"fmt"
	"time"

	"bridge/internal/core"
	"bridge/internal/sim"
	"bridge/internal/workload"
)

// JournalOverheadPoint compares the batched append path with and without
// the write-ahead intent journal on every node's volume.
type JournalOverheadPoint struct {
	P         int
	Plain     time.Duration // per-block batched append, no journal
	Journaled time.Duration // per-block batched append, intent journal on
}

// Overhead returns the fractional slowdown journaling imposes on the
// batched write path.
func (pt JournalOverheadPoint) Overhead() float64 {
	if pt.Plain <= 0 {
		return 0
	}
	return float64(pt.Journaled-pt.Plain) / float64(pt.Plain)
}

// journalBlocksForBench sizes the per-node journal region for the
// overhead runs: comfortably above the minimum for bench-scale volumes,
// small enough not to crowd the data region.
const journalBlocksForBench = 48

// JournalOverhead measures the batched sequential append twice per
// processor count — on plain volumes, then on journaled ones.
func JournalOverhead(cfg Config) ([]JournalOverheadPoint, error) {
	cfg.applyDefaults()
	var pts []JournalOverheadPoint
	for _, p := range cfg.Ps {
		pt := JournalOverheadPoint{P: p}
		var err error
		if pt.Plain, err = measureBatchedWrite(p, cfg); err != nil {
			return nil, fmt.Errorf("journal overhead p=%d plain: %w", p, err)
		}
		jcfg := cfg
		jcfg.JournalBlocks = journalBlocksForBench
		if pt.Journaled, err = measureBatchedWrite(p, jcfg); err != nil {
			return nil, fmt.Errorf("journal overhead p=%d journaled: %w", p, err)
		}
		pts = append(pts, pt)
	}
	return pts, nil
}

// measureBatchedWrite appends cfg.Records records through AppendN in
// batches of 4p — the batched write path the tools use — and returns the
// amortized per-block cost.
func measureBatchedWrite(p int, cfg Config) (time.Duration, error) {
	var perBlock time.Duration
	err := runSim(p, cfg, func(proc sim.Proc, cl *core.Cluster, c *core.Client) error {
		n := cfg.Records
		recs := workload.Records(cfg.Seed, n, cfg.PayloadBytes)
		if _, err := c.Create("f"); err != nil {
			return err
		}
		batch := 4 * p
		start := proc.Now()
		for i := 0; i < n; i += batch {
			end := i + batch
			if end > n {
				end = n
			}
			if _, err := c.AppendN("f", recs[i:end]); err != nil {
				return err
			}
		}
		perBlock = (proc.Now() - start) / time.Duration(n)
		return nil
	})
	return perBlock, err
}
