package experiments

import (
	"fmt"
	"time"

	"bridge/internal/core"
	"bridge/internal/sim"
	"bridge/internal/tools"
)

// PaperCopyTimes are Table 3's published copy times for the 10 MB file.
var PaperCopyTimes = map[int]time.Duration{
	2:  time.Duration(311.6 * float64(time.Second)),
	4:  156 * time.Second,
	8:  time.Duration(79.3 * float64(time.Second)),
	16: 41 * time.Second,
	32: time.Duration(21.6 * float64(time.Second)),
}

// PaperSortTimes are Table 4's published phase times (local sort, merge,
// total) for the 10 MB file.
var PaperSortTimes = map[int][3]time.Duration{
	2:  {350 * time.Minute, 17 * time.Minute, 367 * time.Minute},
	4:  {98 * time.Minute, 16 * time.Minute, 111 * time.Minute},
	8:  {24 * time.Minute, 11 * time.Minute, 35 * time.Minute},
	16: {6 * time.Minute, 7 * time.Minute, 13 * time.Minute},
	32: {time.Duration(0.67 * float64(time.Minute)), time.Duration(4.45 * float64(time.Minute)), time.Duration(5.12 * float64(time.Minute))},
}

// CopyRow is one Table 3 measurement.
type CopyRow struct {
	P         int
	Time      time.Duration
	RecPerSec float64
	// Speedup is relative to the smallest measured p, scaled so the
	// smallest p has speedup == its processor count (as in "near-linear
	// speedup as processors are added").
	Speedup float64
	// PaperTime and PaperSpeedup are the published values for shape
	// comparison (only meaningful at full scale).
	PaperTime    time.Duration
	PaperSpeedup float64
}

// Table3Copy reproduces Table 3 and the copy records/second figure: the
// copy tool over the standard file for each processor count.
func Table3Copy(cfg Config) ([]CopyRow, error) {
	cfg.applyDefaults()
	rows := make([]CopyRow, 0, len(cfg.Ps))
	for _, p := range cfg.Ps {
		var elapsed time.Duration
		err := runSim(p, cfg, func(proc sim.Proc, cl *core.Cluster, c *core.Client) error {
			if err := fill(proc, c, cfg, "src"); err != nil {
				return err
			}
			start := proc.Now()
			st, err := tools.Copy(proc, c, "src", "dst")
			if err != nil {
				return err
			}
			if st.Blocks != int64(cfg.Records) {
				return fmt.Errorf("copied %d blocks, want %d", st.Blocks, cfg.Records)
			}
			elapsed = proc.Now() - start
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("table3 p=%d: %w", p, err)
		}
		rows = append(rows, CopyRow{
			P:         p,
			Time:      elapsed,
			RecPerSec: recPerSec(cfg.Records, elapsed),
			PaperTime: PaperCopyTimes[p],
		})
	}
	if len(rows) > 0 {
		base := rows[0]
		for i := range rows {
			rows[i].Speedup = float64(base.Time) / float64(rows[i].Time) * float64(base.P)
			if base.PaperTime > 0 && rows[i].PaperTime > 0 {
				rows[i].PaperSpeedup = float64(base.PaperTime) / float64(rows[i].PaperTime) * float64(base.P)
			}
		}
	}
	return rows, nil
}

// SortRow is one Table 4 measurement.
type SortRow struct {
	P          int
	Local      time.Duration
	Merge      time.Duration
	Total      time.Duration
	RecPerSec  float64
	PaperLocal time.Duration
	PaperMerge time.Duration
	PaperTotal time.Duration
}

// Table4Sort reproduces Table 4 and the sort figures: the merge sort tool
// over the standard file for each (power-of-two) processor count,
// reporting the local-sort and merge phases separately.
func Table4Sort(cfg Config) ([]SortRow, error) {
	cfg.applyDefaults()
	rows := make([]SortRow, 0, len(cfg.Ps))
	for _, p := range cfg.Ps {
		if p&(p-1) != 0 {
			continue // sort tool requires powers of two
		}
		var st tools.SortStats
		err := runSim(p, cfg, func(proc sim.Proc, cl *core.Cluster, c *core.Client) error {
			if err := fill(proc, c, cfg, "src"); err != nil {
				return err
			}
			var err error
			st, err = tools.Sort(proc, c, "src", "sorted", tools.SortOptions{InCore: cfg.InCore})
			if err != nil {
				return err
			}
			if st.Records != int64(cfg.Records) {
				return fmt.Errorf("sorted %d records, want %d", st.Records, cfg.Records)
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("table4 p=%d: %w", p, err)
		}
		total := st.LocalSort + st.Merge
		paper := PaperSortTimes[p]
		rows = append(rows, SortRow{
			P:          p,
			Local:      st.LocalSort,
			Merge:      st.Merge,
			Total:      total,
			RecPerSec:  recPerSec(cfg.Records, total),
			PaperLocal: paper[0],
			PaperMerge: paper[1],
			PaperTotal: paper[2],
		})
	}
	return rows, nil
}
