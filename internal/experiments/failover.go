// The PR 9 failover experiment: how much virtual time metadata
// availability loses when the replicated Bridge Server's leader is
// killed. The client keeps retrying through redirects, so the measured
// window — kill to first successful post-election operation — is the
// whole client-observed outage.
package experiments

import (
	"errors"
	"fmt"
	"time"

	"bridge/internal/core"
	"bridge/internal/disk"
	"bridge/internal/efs"
	"bridge/internal/lfs"
	"bridge/internal/sim"
)

// failoverReplicas is the consensus group size the experiment boots: the
// useful minimum, tolerating one fault.
const failoverReplicas = 3

// FailoverPoint is one processor count's metadata-HA measurements.
type FailoverPoint struct {
	P        int
	Replicas int

	// SteadyOpen is a leader-served Open before any fault: the baseline
	// metadata round trip in replicated mode.
	SteadyOpen time.Duration
	// FailoverTime is the client-observed outage: virtual time from the
	// leader's kill-9 to the first successful post-election Open,
	// including the client's timeout against the dead leader, the
	// election, and the new leader's takeover replay.
	FailoverTime time.Duration
}

// Failover measures the leader-kill outage across cfg.Ps.
func Failover(cfg Config) ([]FailoverPoint, error) {
	cfg.applyDefaults()
	out := make([]FailoverPoint, 0, len(cfg.Ps))
	for _, p := range cfg.Ps {
		pt, err := failoverAt(p, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

func failoverAt(p int, cfg Config) (FailoverPoint, error) {
	pt := FailoverPoint{P: p, Replicas: failoverReplicas}
	rt := sim.NewVirtual()
	perNode := cfg.Records/p + 1
	cl, err := core.StartCluster(rt, core.ClusterConfig{
		P: p,
		Node: lfs.Config{
			DiskBlocks: perNode*2 + 256,
			Timing:     disk.FixedTiming{Latency: cfg.DiskLatency},
			EFS:        efs.Options{CacheBlocks: cfg.CacheBlocks, JournalBlocks: cfg.JournalBlocks},
		},
		Replicas: failoverReplicas,
		Server:   core.Config{LFSTimeout: cfg.LFSTimeout},
	})
	if err != nil {
		return pt, err
	}
	var fnErr error
	rt.Go("experiment", func(proc sim.Proc) {
		defer cl.Stop()
		c := cl.NewClient(proc, 0, "exp-cli")
		defer c.Close()
		fnErr = func() error {
			if _, err := c.Create("f"); err != nil {
				return err
			}
			for i := 0; i < 32; i++ {
				if err := c.SeqWrite("f", make([]byte, cfg.PayloadBytes)); err != nil {
					return err
				}
			}
			start := proc.Now()
			if _, err := c.Open("f"); err != nil {
				return err
			}
			pt.SteadyOpen = proc.Now() - start
			lead := cl.LeaderServer(0)
			if lead < 0 {
				return errors.New("no leader after a served workload")
			}
			killAt := proc.Now()
			cl.CrashServer(0, lead, killAt)
			// One call: the replicated client absorbs the dead-leader
			// timeout, the redirects, and the new leader's takeover.
			if _, err := c.Open("f"); err != nil {
				return fmt.Errorf("open after leader kill: %w", err)
			}
			pt.FailoverTime = proc.Now() - killAt
			return nil
		}()
	})
	if err := rt.Wait(); err != nil {
		if fnErr != nil {
			return pt, fmt.Errorf("%w (sim: %v)", fnErr, err)
		}
		return pt, err
	}
	return pt, fnErr
}
