package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"text/tabwriter"
	"time"
)

// fmtDur renders a duration compactly in the unit the paper used for the
// corresponding table.
func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "-"
	case d >= time.Minute:
		return fmt.Sprintf("%.2f min", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.1f s", d.Seconds())
	default:
		return fmt.Sprintf("%.1f ms", float64(d)/float64(time.Millisecond))
	}
}

// RenderTable2 writes the Table 2 reproduction.
func (r *Table2Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Table 2: Bridge basic operations (naive interface, %d-block file)\n", r.Records)
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "p\tCreate\tOpen\tRead/blk\tReadN/blk\tWrite/blk\tDelete total\tDelete c (c·n/p ms)")
	for _, pt := range r.Points {
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%s\t%s\t%s\t%.1f\n",
			pt.P, fmtDur(pt.CreateTime), fmtDur(pt.OpenTime),
			fmtDur(pt.ReadPerBlock), fmtDur(pt.ReadBatchPerBlock), fmtDur(pt.WritePerBlock),
			fmtDur(pt.DeleteTotal), pt.DeleteCoeff)
	}
	tw.Flush()
	fmt.Fprintln(w, "(ReadN/blk: batched naive read — vectored scatter-gather + server read-ahead)")
	fmt.Fprintf(w, "\nFitted vs paper:\n")
	tw = tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "op\tmeasured (fit)\tpaper")
	fmt.Fprintf(tw, "Create\t%.0f + %.1fp ms\t%s\n", r.CreateBase, r.CreateSlope, PaperTable2["Create"])
	fmt.Fprintf(tw, "Open\t%.0f ms\t%s\n", r.OpenMean, PaperTable2["Open"])
	fmt.Fprintf(tw, "Read\t%.1f + %.0fp/filesize ms\t%s\n", r.ReadBase, r.ReadSlope, PaperTable2["Read"])
	fmt.Fprintf(tw, "Write\t%.0f ms\t%s\n", r.WriteMean, PaperTable2["Write"])
	fmt.Fprintf(tw, "Delete\t%.1f * filesize/p ms\t%s\n", r.DeleteCoeffMean, PaperTable2["Delete"])
	tw.Flush()
}

// RenderCopy writes the Table 3 reproduction plus the records/second chart.
func RenderCopy(w io.Writer, rows []CopyRow, records int) {
	fmt.Fprintf(w, "Table 3: Copy tool performance (%d-record file)\n", records)
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "p\tcopy time\trec/s\tspeedup\tpaper time\tpaper speedup")
	for _, r := range rows {
		paperT, paperS := "-", "-"
		if r.PaperTime > 0 {
			paperT = fmtDur(r.PaperTime)
			paperS = fmt.Sprintf("%.1f", r.PaperSpeedup)
		}
		fmt.Fprintf(tw, "%d\t%s\t%.0f\t%.1f\t%s\t%s\n", r.P, fmtDur(r.Time), r.RecPerSec, r.Speedup, paperT, paperS)
	}
	tw.Flush()
	pts := make([]ChartPoint, len(rows))
	for i, r := range rows {
		pts[i] = ChartPoint{X: float64(r.P), Y: r.RecPerSec}
	}
	fmt.Fprintln(w, "\nCopy figure: records per second vs processors")
	RenderChart(w, pts, 48, 12)
}

// RenderSort writes the Table 4 reproduction plus its two figures.
func RenderSort(w io.Writer, rows []SortRow, records int) {
	fmt.Fprintf(w, "Table 4: Merge sort tool performance (%d-record file)\n", records)
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "p\tlocal sort\tmerge\ttotal\trec/s\tpaper local\tpaper merge\tpaper total")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%.0f\t%s\t%s\t%s\n",
			r.P, fmtDur(r.Local), fmtDur(r.Merge), fmtDur(r.Total), r.RecPerSec,
			fmtDur(r.PaperLocal), fmtDur(r.PaperMerge), fmtDur(r.PaperTotal))
	}
	tw.Flush()
	pts := make([]ChartPoint, len(rows))
	for i, r := range rows {
		pts[i] = ChartPoint{X: float64(r.P), Y: r.RecPerSec}
	}
	fmt.Fprintln(w, "\nSort figure: records per second vs processors")
	RenderChart(w, pts, 48, 12)
	fmt.Fprintln(w, "\nSort figure: phase times vs processors (L = local sort, M = merge)")
	var phase []LabeledPoint
	for _, r := range rows {
		phase = append(phase,
			LabeledPoint{X: float64(r.P), Y: r.Local.Minutes(), Mark: 'L'},
			LabeledPoint{X: float64(r.P), Y: r.Merge.Minutes(), Mark: 'M'})
	}
	RenderLabeledChart(w, phase, 48, 14, "minutes")
}

// RenderPlacement writes the A1 ablation.
func RenderPlacement(w io.Writer, rows []PlacementRow, reorg []ChunkReorgRow) {
	fmt.Fprintln(w, "Ablation A1: block placement strategies (Section 3)")
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "p\tstrategy\tP(window of p on p nodes)\tmean max load\teffective parallelism")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%s\t%.4f\t%.2f\t%.1f\n", r.P, r.Strategy, r.DistinctFrac, r.MeanMaxLoad, r.EffParallelism)
	}
	tw.Flush()
	fmt.Fprintln(w, "\nGrowing a file by 50% (blocks that must move between nodes):")
	tw = tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "p\told blocks\tnew blocks\tround-robin moves\tchunked moves")
	for _, r := range reorg {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\n", r.P, r.OldBlocks, r.NewBlocks, r.MovedRR, r.MovedChunk)
	}
	tw.Flush()
}

// RenderCreateTree writes the A2 ablation.
func RenderCreateTree(w io.Writer, rows []CreateTreeRow) {
	fmt.Fprintln(w, "Ablation A2: Create initiation, sequential loop vs binary tree (Section 4.5)")
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "p\tsequential\ttree\tsaving")
	for _, r := range rows {
		saving := 1 - float64(r.Tree)/float64(r.Sequential)
		fmt.Fprintf(tw, "%d\t%s\t%s\t%.0f%%\n", r.P, fmtDur(r.Sequential), fmtDur(r.Tree), saving*100)
	}
	tw.Flush()
}

// RenderParallelOpen writes the A3 ablation.
func RenderParallelOpen(w io.Writer, rows []ParallelOpenRow, p, records int) {
	fmt.Fprintf(w, "Ablation A3: parallel-open job width on a %d-node file system (%d records)\n", p, records)
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "t (workers)\tread time\trec/s")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%s\t%.0f\n", r.T, fmtDur(r.Time), r.RecPerSec)
	}
	tw.Flush()
	fmt.Fprintf(w, "(virtual parallelism: widths beyond p=%d proceed in lock-step groups)\n", p)
}

// RenderAccessMethods writes the A4a comparison.
func RenderAccessMethods(w io.Writer, rows []AccessMethodRow, records int) {
	fmt.Fprintf(w, "Ablation A4: copy methods compared (%d records)\n", records)
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "method\tp\ttime\trec/s")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%s\t%.0f\n", r.Method, r.P, fmtDur(r.Time), r.RecPerSec)
	}
	tw.Flush()
}

// RenderFaults writes the A4b fault report.
func RenderFaults(w io.Writer, rep *FaultReport) {
	fmt.Fprintf(w, "Ablation A4: fault intolerance and remedies (p=%d, one node failed)\n", rep.P)
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintf(tw, "unprotected file ruined\t%v\t(paper: \"a failure anywhere in the system is fatal\")\n", rep.UnprotectedRuined)
	fmt.Fprintf(tw, "mirrored file survives\t%v\twrite cost x%.1f, storage x%.1f (paper: \"storage capacity must be doubled\")\n",
		rep.MirrorSurvives, rep.MirrorWriteFactor, rep.MirrorStorageFactor)
	fmt.Fprintf(tw, "parity file survives\t%v\twrite cost x%.1f, storage x%.2f, degraded read x%.1f\n",
		rep.ParitySurvives, rep.ParityWriteFactor, rep.ParityStorageFactor, rep.ParityDegradedReadFactor)
	tw.Flush()
}

// ChartPoint is one unlabeled chart mark.
type ChartPoint struct{ X, Y float64 }

// LabeledPoint is a chart mark with its own rune.
type LabeledPoint struct {
	X, Y float64
	Mark rune
}

// RenderChart draws a simple ASCII scatter in the style of the paper's
// records-per-second figures.
func RenderChart(w io.Writer, pts []ChartPoint, width, height int) {
	lp := make([]LabeledPoint, len(pts))
	for i, p := range pts {
		lp[i] = LabeledPoint{X: p.X, Y: p.Y, Mark: '*'}
	}
	RenderLabeledChart(w, lp, width, height, "rec/s")
}

// RenderLabeledChart draws labeled points on a y-vs-x grid with linear
// axes.
func RenderLabeledChart(w io.Writer, pts []LabeledPoint, width, height int, yLabel string) {
	if len(pts) == 0 {
		return
	}
	maxX, maxY := 0.0, 0.0
	for _, p := range pts {
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	if maxX == 0 || maxY == 0 {
		return
	}
	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", width))
	}
	for _, p := range pts {
		col := int(p.X / maxX * float64(width-1))
		row := height - 1 - int(p.Y/maxY*float64(height-1))
		grid[row][col] = p.Mark
	}
	fmt.Fprintf(w, "%8.0f |%s\n", maxY, string(grid[0]))
	for i := 1; i < height; i++ {
		fmt.Fprintf(w, "%8s |%s\n", "", string(grid[i]))
	}
	fmt.Fprintf(w, "%8s +%s\n", "0", strings.Repeat("-", width))
	fmt.Fprintf(w, "%8s  0%sp=%.0f   (%s vs p)\n", "", strings.Repeat(" ", width-8), maxX, yLabel)
}

// SortRowsByP orders measurement rows for stable rendering.
func SortRowsByP(rows []CopyRow) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].P < rows[j].P })
}
