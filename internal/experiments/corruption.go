package experiments

// The integrity experiments measure what the paper's reliability section
// argues qualitatively: silent corruption is detected by per-block
// checksums, repaired from redundancy, and the background scrubber that
// finds it costs nearly nothing on the hot read path because it only runs
// in idle disk time.

import (
	"bytes"
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"bridge/internal/core"
	"bridge/internal/lfs"
	"bridge/internal/replica"
	"bridge/internal/sim"
	"bridge/internal/workload"
)

// ScrubOverheadPoint compares the batched-naive sequential read with and
// without the background scrubber enabled on every node.
type ScrubOverheadPoint struct {
	P        int
	Plain    time.Duration // per-block batched read, scrubber off
	Scrubbed time.Duration // per-block batched read, scrubber on
}

// Overhead returns the fractional slowdown the scrubber imposes on the
// batched read path (0.02 = 2% slower). Negative values are simulation
// noise from scheduling order and mean "no measurable overhead".
func (pt ScrubOverheadPoint) Overhead() float64 {
	if pt.Plain <= 0 {
		return 0
	}
	return float64(pt.Scrubbed-pt.Plain) / float64(pt.Plain)
}

// ScrubOverhead measures the batched sequential read of the standard
// workload file twice per processor count — once on a plain cluster, once
// with the default idle-time scrubber running on every node.
func ScrubOverhead(cfg Config) ([]ScrubOverheadPoint, error) {
	cfg.applyDefaults()
	if cfg.CacheBlocks == 0 {
		// Match Table 2's small cache so the "no scrub" column equals its
		// batched-naive row and the comparison is apples to apples.
		cfg.CacheBlocks = 16
	}
	var pts []ScrubOverheadPoint
	for _, p := range cfg.Ps {
		pt := ScrubOverheadPoint{P: p}
		var err error
		if pt.Plain, err = measureBatchedRead(p, cfg, nil); err != nil {
			return nil, fmt.Errorf("scrub overhead p=%d plain: %w", p, err)
		}
		if pt.Scrubbed, err = measureBatchedRead(p, cfg, &lfs.ScrubConfig{}); err != nil {
			return nil, fmt.Errorf("scrub overhead p=%d scrubbed: %w", p, err)
		}
		pts = append(pts, pt)
	}
	return pts, nil
}

// measureBatchedRead is measureTable2Batched with a configurable scrubber:
// fill the standard file, then time a SeqReadN sweep over it.
func measureBatchedRead(p int, cfg Config, scrub *lfs.ScrubConfig) (time.Duration, error) {
	bcfg := cfg
	bcfg.ReadAhead = raStripes
	bcfg.Scrub = scrub
	var perBlock time.Duration
	err := runSim(p, bcfg, func(proc sim.Proc, cl *core.Cluster, c *core.Client) error {
		n := cfg.Records
		if err := fill(proc, c, cfg, "f"); err != nil {
			return err
		}
		if _, err := c.Open("f"); err != nil {
			return err
		}
		batch := 4 * p
		start := proc.Now()
		got := 0
		for {
			blocks, eof, err := c.SeqReadN("f", batch)
			if err != nil {
				return err
			}
			got += len(blocks)
			if eof {
				break
			}
		}
		if got != n {
			return fmt.Errorf("batched read returned %d blocks, want %d", got, n)
		}
		perBlock = (proc.Now() - start) / time.Duration(n)
		return nil
	})
	return perBlock, err
}

// CorruptionPoint summarizes one corruption-recovery run: k silent
// bit-flips per node against a mirrored file, then scrub → read-repair →
// resilver → verify.
type CorruptionPoint struct {
	P        int
	Injected int           // bit-flipped blocks (k per node)
	Detected int           // checksum failures the first scrub sweep found
	Repaired int           // blocks rewritten by read-repair + resilver
	Residual int           // checksum failures left after repair (want 0)
	SweepMs  time.Duration // virtual time for one full scrub sweep of all p nodes
}

// corruptionFlips is k, the silent bit-flips injected per node.
const corruptionFlips = 2

// CorruptionRecovery injects corruptionFlips silent bit-flips per node
// under a 4p-block mirrored file, then measures the recovery pipeline at
// each processor count: a full scrub sweep (timed in virtual ms) detects
// the corruption and evicts cached clean copies; a full read pass
// read-repairs the primary copies from their mirrors; Resilver rewrites
// the corrupt mirror copies; a final sweep proves zero residual damage.
//
// The flip sites are chosen from the deterministic data-region layout of
// an interleaved mirror append stream — primary block i on node i mod p,
// shadow block i on node (i+1) mod p — so that every node is hit but no
// logical block ever loses both copies.
func CorruptionRecovery(cfg Config) ([]CorruptionPoint, error) {
	cfg.applyDefaults()
	var pts []CorruptionPoint
	for _, p := range cfg.Ps {
		pt, err := corruptionRecoveryAt(p, cfg)
		if err != nil {
			return nil, fmt.Errorf("corruption recovery p=%d: %w", p, err)
		}
		pts = append(pts, pt)
	}
	return pts, nil
}

func corruptionRecoveryAt(p int, cfg Config) (CorruptionPoint, error) {
	pt := CorruptionPoint{P: p, Injected: corruptionFlips * p}
	rcfg := cfg
	rcfg.Records = 4 * p // the mirror needs three complete append rounds
	err := runSim(p, rcfg, func(proc sim.Proc, cl *core.Cluster, c *core.Client) error {
		nm := int64(rcfg.Records)
		recs := workload.Records(cfg.Seed, int(nm), core.PayloadBytes)
		m, err := replica.CreateMirror(proc, c, "mf", p)
		if err != nil {
			return err
		}
		for _, r := range recs {
			if err := m.Append(r); err != nil {
				return err
			}
		}

		// Flip one bit in two data blocks per node. The data region fills
		// in append arrival order: node 0 receives primary(0), shadow(p-1),
		// primary(p), ...; node j>0 receives shadow(j-1), primary(j),
		// shadow(p+j-1), .... Offsets {1, 4} on node 0 and {0, 5} elsewhere
		// corrupt shadow copies of logical blocks 0..p-1 and primary copies
		// of 2p..3p-1 — every node damaged, no block losing both copies.
		for i, nd := range cl.Nodes {
			offs := []int{0, 5}
			if i == 0 {
				offs = []int{1, 4}
			}
			ds := nd.FS().DataStart()
			for _, off := range offs {
				raw, err := nd.Disk.ReadBlock(proc, ds+off)
				if err != nil {
					return fmt.Errorf("raw read node %d: %w", i, err)
				}
				raw[256] ^= 0x20
				if err := nd.Disk.WriteBlock(proc, ds+off, raw); err != nil {
					return fmt.Errorf("raw write node %d: %w", i, err)
				}
			}
		}

		// One full sweep per node, timed: detection plus cache eviction.
		start := proc.Now()
		for i := range cl.Nodes {
			rep, err := c.Scrub(i)
			if err != nil {
				return fmt.Errorf("scrub node %d: %w", i, err)
			}
			pt.Detected += len(rep.Errors)
		}
		pt.SweepMs = proc.Now() - start

		// A full read pass returns verified data throughout (read-repair
		// rewrites the corrupt primary copies from their mirrors).
		repairedBefore := cl.Net.Stats().Get("bridge.readrepair_blocks")
		for i := int64(0); i < nm; i++ {
			data, err := m.Read(i)
			if err != nil {
				return fmt.Errorf("read block %d: %w", i, err)
			}
			if !bytes.Equal(data, recs[i]) {
				return fmt.Errorf("block %d: wrong bytes after read-repair", i)
			}
		}
		readRepaired := cl.Net.Stats().Get("bridge.readrepair_blocks") - repairedBefore

		// Resilver rewrites the corrupt shadow copies reads never touched.
		resilvered, err := m.Resilver()
		if err != nil {
			return fmt.Errorf("resilver: %w", err)
		}
		pt.Repaired = int(readRepaired) + int(resilvered)

		// A final sweep proves the medium is fully clean again.
		for i := range cl.Nodes {
			rep, err := c.Scrub(i)
			if err != nil {
				return fmt.Errorf("final scrub node %d: %w", i, err)
			}
			pt.Residual += len(rep.Errors)
		}
		return nil
	})
	return pt, err
}

// RenderScrubOverhead writes the scrub-overhead comparison.
func RenderScrubOverhead(w io.Writer, pts []ScrubOverheadPoint, records int) {
	fmt.Fprintf(w, "Scrub overhead: batched naive read of a %d-block file (per block)\n", records)
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "p\tno scrub\tscrub on\toverhead")
	for _, pt := range pts {
		fmt.Fprintf(tw, "%d\t%s\t%s\t%.1f%%\n", pt.P, fmtDur(pt.Plain), fmtDur(pt.Scrubbed), pt.Overhead()*100)
	}
	tw.Flush()
	fmt.Fprintln(w, "(idle-time scrubbing: increments defer to foreground traffic)")
}

// RenderCorruption writes the corruption-recovery experiment.
func RenderCorruption(w io.Writer, pts []CorruptionPoint) {
	fmt.Fprintf(w, "Corruption recovery: %d silent bit-flips per node, mirrored file\n", corruptionFlips)
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "p\tinjected\tdetected\trepaired\tresidual\tsweep (virtual)")
	for _, pt := range pts {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%s\n",
			pt.P, pt.Injected, pt.Detected, pt.Repaired, pt.Residual, fmtDur(pt.SweepMs))
	}
	tw.Flush()
	fmt.Fprintln(w, "(detect: scrub sweep; repair: read-repair from mirror + resilver)")
}
