package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"bridge/internal/core"
	"bridge/internal/sim"
	"bridge/internal/workload"
)

// DisorderedResult quantifies the Section 3 trade-off of disordered
// (linked-list) files against strict interleaving: appends pay for chain
// maintenance, sequential reads are comparable, random access is O(n).
type DisorderedResult struct {
	P      int
	Blocks int
	// Per-block append cost.
	AppendRR    time.Duration
	AppendChain time.Duration
	// Per-block sequential read cost (whole file).
	SeqRR    time.Duration
	SeqChain time.Duration
	// Random read of the middle block.
	RandRR    time.Duration
	RandChain time.Duration
}

// Disordered measures both file kinds on one cluster.
func Disordered(cfg Config, p int) (*DisorderedResult, error) {
	cfg.applyDefaults()
	n := cfg.Records
	if n > 256 {
		n = 256 // random chain access is O(n) LFS reads; keep the walk sane
	}
	res := &DisorderedResult{P: p, Blocks: n}
	err := runSim(p, cfg, func(proc sim.Proc, cl *core.Cluster, c *core.Client) error {
		recs := workload.Records(cfg.Seed, n, cfg.PayloadBytes)

		measure := func(name string, disordered bool) (app, seq, rand time.Duration, err error) {
			if disordered {
				if _, err := c.CreateDisordered(name); err != nil {
					return 0, 0, 0, err
				}
			} else {
				if _, err := c.Create(name); err != nil {
					return 0, 0, 0, err
				}
			}
			start := proc.Now()
			for _, r := range recs {
				if err := c.SeqWrite(name, r); err != nil {
					return 0, 0, 0, err
				}
			}
			app = (proc.Now() - start) / time.Duration(n)
			if _, err := c.Open(name); err != nil {
				return 0, 0, 0, err
			}
			start = proc.Now()
			for {
				_, eof, err := c.SeqRead(name)
				if err != nil {
					return 0, 0, 0, err
				}
				if eof {
					break
				}
			}
			seq = (proc.Now() - start) / time.Duration(n)
			start = proc.Now()
			if _, err := c.ReadAt(name, int64(n/2)); err != nil {
				return 0, 0, 0, err
			}
			rand = proc.Now() - start
			return app, seq, rand, nil
		}

		var err error
		if res.AppendRR, res.SeqRR, res.RandRR, err = measure("rr", false); err != nil {
			return fmt.Errorf("interleaved: %w", err)
		}
		if res.AppendChain, res.SeqChain, res.RandChain, err = measure("chain", true); err != nil {
			return fmt.Errorf("disordered: %w", err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// RenderDisordered writes the A5 comparison.
func RenderDisordered(w io.Writer, r *DisorderedResult) {
	fmt.Fprintf(w, "Ablation A5: disordered (linked-list) files vs strict interleaving (p=%d, %d blocks)\n", r.P, r.Blocks)
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "operation\tinterleaved\tdisordered\tratio")
	row := func(name string, a, b time.Duration) {
		fmt.Fprintf(tw, "%s\t%s\t%s\tx%.1f\n", name, fmtDur(a), fmtDur(b), float64(b)/float64(a))
	}
	row("append (per block)", r.AppendRR, r.AppendChain)
	row("sequential read (per block)", r.SeqRR, r.SeqChain)
	row(fmt.Sprintf("random read (block %d)", r.Blocks/2), r.RandRR, r.RandChain)
	tw.Flush()
	fmt.Fprintln(w, `(the paper: "arbitrary scattering of blocks at the expense of very slow random access")`)
}
