// The PR 8 write-path campaign: group-commit write-behind versus the
// paper's synchronous per-block append, tool-mode parallel delete versus
// the server's serial per-block walk, and Reed–Solomon k+m striping
// versus mirroring. Each point boots fresh clusters per configuration
// and measures simulated time, like every other experiment here.
package experiments

import (
	"time"

	"bridge/internal/core"
	"bridge/internal/replica"
	"bridge/internal/sim"
	"bridge/internal/tools"
	"bridge/internal/workload"
)

// wbStripes is the write-behind depth the campaign uses: two stripes
// buffered per file, mirroring raStripes on the read side.
const wbStripes = 2

// WriteCampaignPoint is one processor count's write-path measurements.
type WriteCampaignPoint struct {
	P int

	// Sequential append, per block: the synchronous baseline against the
	// write-behind path (acknowledged from the buffer, group-committed in
	// coalesced vectored windows, drained by a final Flush).
	NaiveWritePerBlock time.Duration
	WBWritePerBlock    time.Duration

	// Whole-file delete: the server's serial per-block chain walk against
	// the tool-mode delete, where each node frees its own column locally.
	SerialDeleteTotal   time.Duration
	ParallelDeleteTotal time.Duration

	// Redundant append, per block, plus the measured storage overhead
	// (total blocks stored / data blocks): RS(k,2) with k = p-2 against
	// the 2x mirror.
	MirrorAppendPerBlock time.Duration
	RSAppendPerBlock     time.Duration
	RSK, RSM             int
	MirrorOverhead       float64
	RSOverhead           float64
}

// WriteSpeedup is the group-commit gain on sequential appends.
func (pt WriteCampaignPoint) WriteSpeedup() float64 {
	if pt.WBWritePerBlock <= 0 {
		return 0
	}
	return float64(pt.NaiveWritePerBlock) / float64(pt.WBWritePerBlock)
}

// DeleteSpeedup is the tool-mode gain on whole-file deletes.
func (pt WriteCampaignPoint) DeleteSpeedup() float64 {
	if pt.ParallelDeleteTotal <= 0 {
		return 0
	}
	return float64(pt.SerialDeleteTotal) / float64(pt.ParallelDeleteTotal)
}

// WriteCampaign measures the write-path suite across cfg.Ps.
func WriteCampaign(cfg Config) ([]WriteCampaignPoint, error) {
	cfg.applyDefaults()
	out := make([]WriteCampaignPoint, 0, len(cfg.Ps))
	for _, p := range cfg.Ps {
		pt, err := writeCampaignAt(p, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

func writeCampaignAt(p int, cfg Config) (WriteCampaignPoint, error) {
	pt := WriteCampaignPoint{P: p}
	recs := workload.Records(cfg.Seed, cfg.Records, cfg.PayloadBytes)
	n := time.Duration(cfg.Records)

	// Synchronous appends and the serial delete share one boot: the
	// paper-fidelity baseline configuration.
	err := runSim(p, cfg, func(proc sim.Proc, cl *core.Cluster, c *core.Client) error {
		start := proc.Now()
		if err := workload.Fill(proc, c, "f", recs); err != nil {
			return err
		}
		pt.NaiveWritePerBlock = (proc.Now() - start) / n
		start = proc.Now()
		if _, err := c.Delete("f"); err != nil {
			return err
		}
		pt.SerialDeleteTotal = proc.Now() - start
		return nil
	})
	if err != nil {
		return pt, err
	}

	// Write-behind appends (timed through the draining Flush, so buffered
	// blocks are not counted as free) and the tool-mode parallel delete.
	wbCfg := cfg
	wbCfg.WriteBehind = wbStripes
	err = runSim(p, wbCfg, func(proc sim.Proc, cl *core.Cluster, c *core.Client) error {
		start := proc.Now()
		if err := workload.Fill(proc, c, "f", recs); err != nil {
			return err
		}
		if _, err := c.Flush("f"); err != nil {
			return err
		}
		pt.WBWritePerBlock = (proc.Now() - start) / n
		start = proc.Now()
		if _, err := tools.Delete(proc, c, "f"); err != nil {
			return err
		}
		pt.ParallelDeleteTotal = proc.Now() - start
		return nil
	})
	if err != nil {
		return pt, err
	}

	// Redundancy: mirror and RS(p-2, 2) appends of full-block payloads,
	// with the storage overhead measured from the constituent files.
	full := workload.Records(cfg.Seed, cfg.Records, core.PayloadBytes)
	err = runSim(p, cfg, func(proc sim.Proc, cl *core.Cluster, c *core.Client) error {
		m, err := replica.CreateMirror(proc, c, "m", p)
		if err != nil {
			return err
		}
		start := proc.Now()
		for _, rec := range full {
			if err := m.Append(rec); err != nil {
				return err
			}
		}
		pt.MirrorAppendPerBlock = (proc.Now() - start) / n
		pt.MirrorOverhead = 2
		return nil
	})
	if err != nil {
		return pt, err
	}
	pt.RSK, pt.RSM = p-2, 2
	if pt.RSK < 1 {
		return pt, nil // too few nodes for RS; leave the fields zero
	}
	err = runSim(p, cfg, func(proc sim.Proc, cl *core.Cluster, c *core.Client) error {
		rs, err := replica.CreateRS(proc, c, "r", replica.RSOptions{K: pt.RSK, M: pt.RSM})
		if err != nil {
			return err
		}
		start := proc.Now()
		for _, rec := range full {
			if err := rs.Append(rec); err != nil {
				return err
			}
		}
		pt.RSAppendPerBlock = (proc.Now() - start) / n
		stored, err := rs.StorageBlocks()
		if err != nil {
			return err
		}
		pt.RSOverhead = float64(stored) / float64(rs.Blocks())
		return nil
	})
	return pt, err
}
