package experiments

import (
	"fmt"
	"time"

	"bridge/internal/core"
	"bridge/internal/distrib"
	"bridge/internal/msg"
	"bridge/internal/replica"
	"bridge/internal/seqfs"
	"bridge/internal/sim"
	"bridge/internal/tools"
	"bridge/internal/workload"
)

// --- A1: placement strategies (Section 3) ---

// PlacementRow quantifies one strategy at one width.
type PlacementRow struct {
	P        int
	Strategy string
	// DistinctFrac is the fraction of p-block windows landing on p
	// distinct nodes (round-robin: 1.0 by construction).
	DistinctFrac float64
	// MeanMaxLoad is the expected per-window serialization factor for
	// parallel batch reads (1.0 = perfectly parallel).
	MeanMaxLoad float64
	// EffParallelism is P / MeanMaxLoad.
	EffParallelism float64
}

// ChunkReorgRow shows the cost of growing a chunked file.
type ChunkReorgRow struct {
	P          int
	OldBlocks  int64
	NewBlocks  int64
	MovedRR    int64 // round-robin: appends never move blocks
	MovedChunk int64
}

// Placement runs the Section 3 ablation analytically.
func Placement(cfg Config) ([]PlacementRow, []ChunkReorgRow, error) {
	cfg.applyDefaults()
	const windows = 2000
	var rows []PlacementRow
	for _, p := range cfg.Ps {
		rr, err := distrib.New(distrib.Spec{Kind: distrib.RoundRobin, P: p})
		if err != nil {
			return nil, nil, err
		}
		h, err := distrib.New(distrib.Spec{Kind: distrib.Hashed, P: p, Seed: uint64(cfg.Seed)})
		if err != nil {
			return nil, nil, err
		}
		ch, err := distrib.New(distrib.Spec{Kind: distrib.Chunked, P: p, TotalBlocks: int64(cfg.Records)})
		if err != nil {
			return nil, nil, err
		}
		for _, s := range []struct {
			name string
			l    distrib.Layout
		}{{"round-robin", rr}, {"hashed", h}, {"chunked", ch}} {
			load := distrib.MeanWindowMaxLoad(s.l, windows, p)
			rows = append(rows, PlacementRow{
				P:              p,
				Strategy:       s.name,
				DistinctFrac:   distrib.DistinctWindowFraction(s.l, windows, p),
				MeanMaxLoad:    load,
				EffParallelism: float64(p) / load,
			})
		}
	}
	var reorg []ChunkReorgRow
	for _, p := range cfg.Ps {
		old := int64(cfg.Records)
		grown := old + old/2
		reorg = append(reorg, ChunkReorgRow{
			P:          p,
			OldBlocks:  old,
			NewBlocks:  grown,
			MovedRR:    0,
			MovedChunk: distrib.ChunkedAppendMoves(p, old, grown),
		})
	}
	return rows, reorg, nil
}

// --- A2: Create initiation, sequential loop vs embedded binary tree
// (Section 4.5: "Performance could be improved somewhat by sending startup
// and completion messages through an embedded binary tree.") ---

// CreateTreeRow compares Create costs at one width.
type CreateTreeRow struct {
	P          int
	Sequential time.Duration
	Tree       time.Duration
}

// CreateTree measures Create with both initiation strategies.
func CreateTree(cfg Config) ([]CreateTreeRow, error) {
	cfg.applyDefaults()
	rows := make([]CreateTreeRow, 0, len(cfg.Ps))
	for _, p := range cfg.Ps {
		row := CreateTreeRow{P: p}
		err := runSim(p, cfg, func(proc sim.Proc, cl *core.Cluster, c *core.Client) error {
			const trials = 4
			proc.Sleep(2 * time.Second) // let boot-time formatting settle
			start := proc.Now()
			for i := 0; i < trials; i++ {
				if _, err := c.CreateSpec(fmt.Sprintf("seq%d", i), distrib.Spec{}, false); err != nil {
					return err
				}
			}
			row.Sequential = (proc.Now() - start) / trials
			start = proc.Now()
			for i := 0; i < trials; i++ {
				if _, err := c.CreateSpec(fmt.Sprintf("tree%d", i), distrib.Spec{}, true); err != nil {
					return err
				}
			}
			row.Tree = (proc.Now() - start) / trials
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("createtree p=%d: %w", p, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// --- A3: parallel-open virtual parallelism (Section 4.1) ---

// ParallelOpenRow measures a whole-file job read at one job width.
type ParallelOpenRow struct {
	T         int // job width (number of workers)
	Time      time.Duration
	RecPerSec float64
}

// ParallelOpen reads the standard file through parallel-open jobs of
// increasing width on a fixed p-node cluster. Throughput grows until t
// reaches the interleaving breadth p, after which the Bridge Server
// simulates the extra parallelism in lock-step groups of p and the curve
// flattens — "hidden serialization ... may lead to unexpected performance".
func ParallelOpen(cfg Config, p int, widths []int) ([]ParallelOpenRow, error) {
	cfg.applyDefaults()
	if len(widths) == 0 {
		widths = []int{1, 2, 4, 8, 16, 32}
	}
	rows := make([]ParallelOpenRow, 0, len(widths))
	for _, t := range widths {
		t := t
		var elapsed time.Duration
		err := runSim(p, cfg, func(proc sim.Proc, cl *core.Cluster, c *core.Client) error {
			if err := fill(proc, c, cfg, "f"); err != nil {
				return err
			}
			workers := make([]msg.Addr, t)
			jws := make([]*core.JobWorker, t)
			for w := 0; w < t; w++ {
				jw := core.NewJobWorker(cl.Net, 0, fmt.Sprintf("po.w%d", w))
				jws[w] = jw
				workers[w] = jw.Addr()
				proc.Go(fmt.Sprintf("po.worker%d", w), func(wp sim.Proc) {
					for {
						if _, ok := jw.Next(wp); !ok {
							return
						}
					}
				})
			}
			job, err := c.ParallelOpen("f", workers)
			if err != nil {
				return err
			}
			start := proc.Now()
			for {
				_, eof, err := job.Read()
				if err != nil {
					return err
				}
				if eof {
					break
				}
			}
			elapsed = proc.Now() - start
			if err := job.Close(); err != nil {
				return err
			}
			for _, jw := range jws {
				jw.Close()
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("parallelopen t=%d: %w", t, err)
		}
		rows = append(rows, ParallelOpenRow{T: t, Time: elapsed, RecPerSec: recPerSec(cfg.Records, elapsed)})
	}
	return rows, nil
}

// --- A4a: tool vs naive vs sequential copy (Section 6) ---

// AccessMethodRow compares one copy method.
type AccessMethodRow struct {
	Method    string
	P         int
	Time      time.Duration
	RecPerSec float64
}

// ToolVsNaive copies the standard file four ways: through a single-node
// conventional file system, through the naive interface of a p-node Bridge
// (striping only), through a parallel-open job, and as a tool.
func ToolVsNaive(cfg Config, p int) ([]AccessMethodRow, error) {
	cfg.applyDefaults()
	var rows []AccessMethodRow

	// Conventional sequential file system: one node, one server.
	var seqTime time.Duration
	err := runSim(1, cfg, func(proc sim.Proc, cl *core.Cluster, c *core.Client) error {
		if err := fill(proc, c, cfg, "src"); err != nil {
			return err
		}
		start := proc.Now()
		n, err := seqfs.Copy(proc, c, "src", "dst")
		if err != nil {
			return err
		}
		if n != int64(cfg.Records) {
			return fmt.Errorf("seq copy moved %d, want %d", n, cfg.Records)
		}
		seqTime = proc.Now() - start
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("seqfs copy: %w", err)
	}
	rows = append(rows, AccessMethodRow{Method: "sequential FS (p=1)", P: 1, Time: seqTime, RecPerSec: recPerSec(cfg.Records, seqTime)})

	// Naive interface on p nodes (striping without parallel software).
	var naiveTime time.Duration
	err = runSim(p, cfg, func(proc sim.Proc, cl *core.Cluster, c *core.Client) error {
		if err := fill(proc, c, cfg, "src"); err != nil {
			return err
		}
		start := proc.Now()
		if _, err := seqfs.Copy(proc, c, "src", "dst"); err != nil {
			return err
		}
		naiveTime = proc.Now() - start
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("naive copy: %w", err)
	}
	rows = append(rows, AccessMethodRow{Method: "naive interface", P: p, Time: naiveTime, RecPerSec: recPerSec(cfg.Records, naiveTime)})

	// Batched naive interface: the same sequential client, but moving
	// runs of blocks per request (SeqReadN/AppendN) with server
	// read-ahead, so every round trip drives all p disks.
	var batchedTime time.Duration
	bcfg := cfg
	bcfg.ReadAhead = raStripes
	err = runSim(p, bcfg, func(proc sim.Proc, cl *core.Cluster, c *core.Client) error {
		if err := fill(proc, c, cfg, "src"); err != nil {
			return err
		}
		if _, err := c.Create("dst"); err != nil {
			return err
		}
		if _, err := c.Open("src"); err != nil {
			return err
		}
		batch := 4 * p
		start := proc.Now()
		moved := 0
		for {
			blocks, eof, err := c.SeqReadN("src", batch)
			if err != nil {
				return err
			}
			if len(blocks) > 0 {
				n, err := c.AppendN("dst", blocks)
				if err != nil {
					return err
				}
				moved += n
			}
			if eof {
				break
			}
		}
		if moved != cfg.Records {
			return fmt.Errorf("batched copy moved %d, want %d", moved, cfg.Records)
		}
		batchedTime = proc.Now() - start
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("batched naive copy: %w", err)
	}
	rows = append(rows, AccessMethodRow{Method: "naive batched (vec)", P: p, Time: batchedTime, RecPerSec: recPerSec(cfg.Records, batchedTime)})

	// Parallel-open job of width p: read rounds feed write rounds.
	var jobTime time.Duration
	err = runSim(p, cfg, func(proc sim.Proc, cl *core.Cluster, c *core.Client) error {
		if err := fill(proc, c, cfg, "src"); err != nil {
			return err
		}
		if _, err := c.Create("dst"); err != nil {
			return err
		}
		start := proc.Now()
		if err := jobCopy(proc, cl, c, "src", "dst", p); err != nil {
			return err
		}
		jobTime = proc.Now() - start
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("job copy: %w", err)
	}
	rows = append(rows, AccessMethodRow{Method: "parallel open (t=p)", P: p, Time: jobTime, RecPerSec: recPerSec(cfg.Records, jobTime)})

	// Tool copy.
	var toolTime time.Duration
	err = runSim(p, cfg, func(proc sim.Proc, cl *core.Cluster, c *core.Client) error {
		if err := fill(proc, c, cfg, "src"); err != nil {
			return err
		}
		start := proc.Now()
		if _, err := tools.Copy(proc, c, "src", "dst"); err != nil {
			return err
		}
		toolTime = proc.Now() - start
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("tool copy: %w", err)
	}
	rows = append(rows, AccessMethodRow{Method: "copy tool", P: p, Time: toolTime, RecPerSec: recPerSec(cfg.Records, toolTime)})
	return rows, nil
}

// jobCopy copies src to dst through a parallel-open job: each read round's
// blocks are echoed back in the following write round by the same workers.
func jobCopy(proc sim.Proc, cl *core.Cluster, c *core.Client, src, dst string, t int) error {
	workers := make([]msg.Addr, t)
	jws := make([]*core.JobWorker, t)
	for w := 0; w < t; w++ {
		jw := core.NewJobWorker(cl.Net, 0, fmt.Sprintf("jc.w%d", w))
		jws[w] = jw
		workers[w] = jw.Addr()
		proc.Go(fmt.Sprintf("jc.worker%d", w), func(wp sim.Proc) {
			for {
				d, ok := jw.Next(wp)
				if !ok {
					return
				}
				if err := jw.Supply(wp, d.Data, d.EOF); err != nil {
					return
				}
			}
		})
	}
	rjob, err := c.ParallelOpen(src, workers)
	if err != nil {
		return err
	}
	wjob, err := c.ParallelOpen(dst, workers)
	if err != nil {
		return err
	}
	for {
		_, eof, err := rjob.Read()
		if err != nil {
			return err
		}
		if _, err := wjob.Write(); err != nil {
			return err
		}
		if eof {
			break
		}
	}
	if err := rjob.Close(); err != nil {
		return err
	}
	if err := wjob.Close(); err != nil {
		return err
	}
	for _, jw := range jws {
		jw.Close()
	}
	return nil
}

// --- A4b: fault intolerance and the replication/parity remedies
// (Section 7) ---

// FaultReport summarizes the fault experiment.
type FaultReport struct {
	P int
	// UnprotectedRuined: reading any block on the failed node fails.
	UnprotectedRuined bool
	// Mirror and parity behavior after a single node failure.
	MirrorSurvives bool
	ParitySurvives bool
	// Write costs per record relative to an unprotected file.
	MirrorWriteFactor float64
	ParityWriteFactor float64
	// Storage blocks used per data block.
	MirrorStorageFactor float64
	ParityStorageFactor float64
	// Degraded read cost relative to a healthy read.
	ParityDegradedReadFactor float64
}

// Faults runs the Section 7 experiment on a p-node cluster with a reduced
// record count (failure handling is timeout-driven).
func Faults(cfg Config, p int) (*FaultReport, error) {
	cfg.applyDefaults()
	// Responsive failover: the workload here is tiny, so a short
	// failure-detection timeout keeps the single-threaded server from
	// head-of-line blocking on the dead node.
	cfg.LFSTimeout = 30 * time.Second
	n := cfg.Records
	if n > 64 {
		n = 64
	}
	rep := &FaultReport{P: p}
	err := runSim(p, cfg, func(proc sim.Proc, cl *core.Cluster, c *core.Client) error {
		c.SetTimeout(10 * time.Minute)
		recs := workload.Records(cfg.Seed, n, core.PayloadBytes)

		used := func() int {
			total := 0
			for _, nd := range cl.Nodes {
				total += nd.FS().Disk().Config().NumBlocks - nd.FS().FreeBlocks()
			}
			return total
		}

		// Unprotected file.
		if err := workload.Fill(proc, c, "plain", recs); err != nil {
			return err
		}
		start := proc.Now()
		if err := c.SeqWrite("plain", recs[0]); err != nil {
			return err
		}
		plainWrite := proc.Now() - start
		start = proc.Now()
		if _, err := c.ReadAt("plain", 0); err != nil {
			return err
		}
		healthyRead := proc.Now() - start

		// Mirror.
		base := used()
		m, err := replica.CreateMirror(proc, c, "mir", p)
		if err != nil {
			return err
		}
		start = proc.Now()
		for _, r := range recs {
			if err := m.Append(r); err != nil {
				return err
			}
		}
		mirrorWrite := (proc.Now() - start) / time.Duration(n)
		rep.MirrorStorageFactor = float64(used()-base) / float64(n)
		rep.MirrorWriteFactor = float64(mirrorWrite) / float64(plainWrite)

		// Parity.
		base = used()
		pf, err := replica.CreateParity(proc, c, "par", p)
		if err != nil {
			return err
		}
		start = proc.Now()
		for _, r := range recs {
			if err := pf.Append(r); err != nil {
				return err
			}
		}
		parityWrite := (proc.Now() - start) / time.Duration(n)
		rep.ParityStorageFactor = float64(used()-base) / float64(n)
		rep.ParityWriteFactor = float64(parityWrite) / float64(plainWrite)

		// Fail one data node. Use a short server timeout so failure
		// surfaces quickly in simulated time.
		cl.FailNode(1)

		if _, err := c.ReadAt("plain", 1); err != nil {
			rep.UnprotectedRuined = true
		}
		rep.MirrorSurvives = true
		for i := int64(0); i < int64(n); i++ {
			if _, err := m.Read(i); err != nil {
				rep.MirrorSurvives = false
				break
			}
		}
		rep.ParitySurvives = true
		var reconTotal time.Duration
		reconReads := 0
		for i := int64(0); i < int64(n); i++ {
			if int(i)%(p-1) == 1 {
				// Block on the failed node: reconstruction path,
				// timed directly (Read would first pay the failure-
				// detection timeout, which measures the timeout
				// setting, not the scheme).
				start = proc.Now()
				if _, err := pf.Reconstruct(i); err != nil {
					rep.ParitySurvives = false
					break
				}
				reconTotal += proc.Now() - start
				reconReads++
				continue
			}
			if _, err := pf.Read(i); err != nil {
				rep.ParitySurvives = false
				break
			}
		}
		if reconReads > 0 && healthyRead > 0 {
			rep.ParityDegradedReadFactor = float64(reconTotal/time.Duration(reconReads)) / float64(healthyRead)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rep, nil
}
