package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"bridge/internal/core"
	"bridge/internal/seqfs"
	"bridge/internal/sim"
	"bridge/internal/tools"
)

// UtilizationRow reports how busy the disks were during one copy method —
// the paper's scaling criterion made measurable: "algorithms will continue
// to scale so long as all the disks are busy all the time (assuming they
// are doing useful work)".
type UtilizationRow struct {
	Method  string
	Elapsed time.Duration
	// MinBusy/AvgBusy/MaxBusy are per-disk busy-time fractions of the
	// elapsed interval.
	MinBusy float64
	AvgBusy float64
	MaxBusy float64
}

// Utilization copies the standard file through the naive interface and as
// a tool on a p-node cluster, measuring per-disk busy fractions.
func Utilization(cfg Config, p int) ([]UtilizationRow, error) {
	cfg.applyDefaults()
	var rows []UtilizationRow
	for _, method := range []string{"naive interface", "copy tool"} {
		method := method
		var row UtilizationRow
		err := runSim(p, cfg, func(proc sim.Proc, cl *core.Cluster, c *core.Client) error {
			if err := fill(proc, c, cfg, "src"); err != nil {
				return err
			}
			before := make([]time.Duration, len(cl.Nodes))
			for i, n := range cl.Nodes {
				before[i] = n.Disk.Stats().GetTime("disk.busy")
			}
			start := proc.Now()
			var err error
			if method == "copy tool" {
				_, err = tools.Copy(proc, c, "src", "dst")
			} else {
				_, err = seqfs.Copy(proc, c, "src", "dst")
			}
			if err != nil {
				return err
			}
			elapsed := proc.Now() - start
			row = UtilizationRow{Method: method, Elapsed: elapsed, MinBusy: 1}
			for i, n := range cl.Nodes {
				busy := n.Disk.Stats().GetTime("disk.busy") - before[i]
				frac := float64(busy) / float64(elapsed)
				row.AvgBusy += frac / float64(len(cl.Nodes))
				if frac < row.MinBusy {
					row.MinBusy = frac
				}
				if frac > row.MaxBusy {
					row.MaxBusy = frac
				}
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("utilization (%s): %w", method, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderUtilization writes the comparison.
func RenderUtilization(w io.Writer, rows []UtilizationRow, p, records int) {
	fmt.Fprintf(w, "Disk utilization during a %d-record copy on %d nodes\n", records, p)
	fmt.Fprintln(w, `(the paper: "algorithms will continue to scale so long as all the disks are busy all the time")`)
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "method\telapsed\tdisk busy min\tavg\tmax")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%.0f%%\t%.0f%%\t%.0f%%\n",
			r.Method, fmtDur(r.Elapsed), r.MinBusy*100, r.AvgBusy*100, r.MaxBusy*100)
	}
	tw.Flush()
}
