package experiments

// The observability experiments quantify two things: that attaching the
// span recorder costs nothing in simulated time (it must — spans charge no
// virtual time, so the perf gate holds it to ~0%), and where each access
// method actually spends its latency, layer by layer, which the paper's
// tables imply but never show directly.

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"

	"bridge/internal/core"
	"bridge/internal/obs"
	"bridge/internal/sim"
	"bridge/internal/tools"
)

// ObsOverheadPoint compares the batched sequential read with and without
// the observability recorder attached to the network and every disk.
type ObsOverheadPoint struct {
	P        int
	Plain    time.Duration // per-block batched read, recorder off
	Observed time.Duration // per-block batched read, recorder on
}

// Overhead returns the fractional slowdown observability imposes on the
// batched read path. Spans charge no simulated time, so anything beyond
// scheduling noise is a bug.
func (pt ObsOverheadPoint) Overhead() float64 {
	if pt.Plain <= 0 {
		return 0
	}
	return float64(pt.Observed-pt.Plain) / float64(pt.Plain)
}

// ObsOverhead measures the batched sequential read twice per processor
// count — plain, then with a recorder capturing every span.
func ObsOverhead(cfg Config) ([]ObsOverheadPoint, error) {
	cfg.applyDefaults()
	if cfg.CacheBlocks == 0 {
		cfg.CacheBlocks = 16 // match Table 2's batched-naive row
	}
	var pts []ObsOverheadPoint
	for _, p := range cfg.Ps {
		pt := ObsOverheadPoint{P: p}
		var err error
		if pt.Plain, err = measureBatchedRead(p, cfg, nil); err != nil {
			return nil, fmt.Errorf("obs overhead p=%d plain: %w", p, err)
		}
		if pt.Observed, _, err = measureBatchedReadObs(p, cfg); err != nil {
			return nil, fmt.Errorf("obs overhead p=%d observed: %w", p, err)
		}
		pts = append(pts, pt)
	}
	return pts, nil
}

// WriteObsTrace runs the observed batched read at p and writes the run's
// Chrome trace_event JSON to w — the `bridgeperf -trace` artifact.
func WriteObsTrace(cfg Config, p int, w io.Writer) error {
	cfg.applyDefaults()
	if cfg.CacheBlocks == 0 {
		cfg.CacheBlocks = 16
	}
	_, rec, err := measureBatchedReadObs(p, cfg)
	if err != nil {
		return err
	}
	return rec.WriteChromeTrace(w)
}

// measureBatchedReadObs is measureBatchedRead with a recorder attached to
// the network and every disk for the whole run (fill included), the worst
// case for recording volume.
func measureBatchedReadObs(p int, cfg Config) (time.Duration, *obs.Recorder, error) {
	bcfg := cfg
	bcfg.ReadAhead = raStripes
	rec := obs.NewRecorder(obs.Config{}.WithDefaults())
	var perBlock time.Duration
	err := runSim(p, bcfg, func(proc sim.Proc, cl *core.Cluster, c *core.Client) error {
		cl.Net.SetRecorder(rec)
		for _, nd := range cl.Nodes {
			nd.Disk.SetRecorder(rec, int(nd.ID))
		}
		n := cfg.Records
		if err := fill(proc, c, cfg, "f"); err != nil {
			return err
		}
		if _, err := c.Open("f"); err != nil {
			return err
		}
		batch := 4 * p
		start := proc.Now()
		got := 0
		for {
			blocks, eof, err := c.SeqReadN("f", batch)
			if err != nil {
				return err
			}
			got += len(blocks)
			if eof {
				break
			}
		}
		if got != n {
			return fmt.Errorf("batched read returned %d blocks, want %d", got, n)
		}
		perBlock = (proc.Now() - start) / time.Duration(n)
		return nil
	})
	return perBlock, rec, err
}

// LatencyRow is one access method's per-layer latency breakdown: the mean
// span duration at each layer, computed from the op-kind histograms of an
// observed run. Client spans cover whole operations (round trips included),
// server spans the request service time, LFS spans the per-node storage
// calls, and disk spans the raw device accesses — so reading down a row
// shows where each method's time goes.
type LatencyRow struct {
	Method    string
	ClientOps int64
	Client    time.Duration // mean client-op latency
	ClientP95 time.Duration
	Server    time.Duration // mean server service time
	LFS       time.Duration // mean per-node storage call
	Disk      time.Duration // mean device access
}

// layerMean returns the count-weighted mean duration across every
// histogram whose kind carries the layer prefix ("client.", "server.", ...).
func layerMean(hists []obs.HistSnapshot, prefix string) (time.Duration, int64) {
	var total time.Duration
	var count int64
	for _, h := range hists {
		if strings.HasPrefix(h.Kind, prefix) {
			total += h.Total
			count += h.Count
		}
	}
	if count == 0 {
		return 0, 0
	}
	return total / time.Duration(count), count
}

// layerP95 returns the largest P95 across the layer's histograms — the
// slow tail of the layer's dominant op kind.
func layerP95(hists []obs.HistSnapshot, prefix string) time.Duration {
	var p95 time.Duration
	for _, h := range hists {
		if strings.HasPrefix(h.Kind, prefix) && h.P95 > p95 {
			p95 = h.P95
		}
	}
	return p95
}

// measureObserved runs fn against a fresh observed cluster (recorder
// attached after the fill, so only the measured access pattern lands in
// the histograms) and returns the run's histogram snapshots.
func measureObserved(p int, cfg Config, fn func(proc sim.Proc, c *core.Client) error) ([]obs.HistSnapshot, error) {
	rec := obs.NewRecorder(obs.Config{}.WithDefaults())
	err := runSim(p, cfg, func(proc sim.Proc, cl *core.Cluster, c *core.Client) error {
		if err := fill(proc, c, cfg, "src"); err != nil {
			return err
		}
		cl.Net.SetRecorder(rec)
		for _, nd := range cl.Nodes {
			nd.Disk.SetRecorder(rec, int(nd.ID))
		}
		return fn(proc, c)
	})
	if err != nil {
		return nil, err
	}
	return rec.Histograms(), nil
}

// LatencyBreakdown measures the per-layer latency of the three access
// methods the paper compares — per-block naive read, batched naive read,
// and the parallel copy tool — at the first configured processor count.
func LatencyBreakdown(cfg Config) ([]LatencyRow, error) {
	cfg.applyDefaults()
	if cfg.CacheBlocks == 0 {
		cfg.CacheBlocks = 16
	}
	p := cfg.Ps[0]
	n := cfg.Records

	type method struct {
		name string
		cfg  Config
		run  func(proc sim.Proc, c *core.Client) error
	}
	naiveCfg := cfg // no read-ahead: the paper's one-block-per-round-trip read
	batchCfg := cfg
	batchCfg.ReadAhead = raStripes
	methods := []method{
		{"naive read", naiveCfg, func(proc sim.Proc, c *core.Client) error {
			if _, err := c.Open("src"); err != nil {
				return err
			}
			for i := 0; i < n; i++ {
				if _, eof, err := c.SeqRead("src"); err != nil {
					return err
				} else if eof {
					return fmt.Errorf("early EOF at block %d", i)
				}
			}
			return nil
		}},
		{"batched read", batchCfg, func(proc sim.Proc, c *core.Client) error {
			if _, err := c.Open("src"); err != nil {
				return err
			}
			got := 0
			for {
				blocks, eof, err := c.SeqReadN("src", 4*p)
				if err != nil {
					return err
				}
				got += len(blocks)
				if eof {
					break
				}
			}
			if got != n {
				return fmt.Errorf("batched read returned %d blocks, want %d", got, n)
			}
			return nil
		}},
		{"copy tool", cfg, func(proc sim.Proc, c *core.Client) error {
			st, err := tools.Copy(proc, c, "src", "dst")
			if err != nil {
				return err
			}
			if st.Blocks != int64(n) {
				return fmt.Errorf("copied %d blocks, want %d", st.Blocks, n)
			}
			return nil
		}},
	}

	rows := make([]LatencyRow, 0, len(methods))
	for _, m := range methods {
		hists, err := measureObserved(p, m.cfg, m.run)
		if err != nil {
			return nil, fmt.Errorf("latency breakdown %q: %w", m.name, err)
		}
		row := LatencyRow{Method: m.name}
		row.Client, row.ClientOps = layerMean(hists, "client.")
		row.ClientP95 = layerP95(hists, "client.")
		row.Server, _ = layerMean(hists, "server.")
		row.LFS, _ = layerMean(hists, "lfs.")
		row.Disk, _ = layerMean(hists, "disk.")
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderObsOverhead writes the observability-overhead comparison.
func RenderObsOverhead(w io.Writer, pts []ObsOverheadPoint, records int) {
	fmt.Fprintf(w, "Observability overhead: batched naive read of a %d-block file (per block)\n", records)
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "p\tno obs\tobs on\toverhead")
	for _, pt := range pts {
		fmt.Fprintf(tw, "%d\t%s\t%s\t%.1f%%\n", pt.P, fmtDur(pt.Plain), fmtDur(pt.Observed), pt.Overhead()*100)
	}
	tw.Flush()
	fmt.Fprintln(w, "(spans charge no simulated time; any overhead is a bug)")
}

// RenderLatencyBreakdown writes the per-layer latency table.
func RenderLatencyBreakdown(w io.Writer, rows []LatencyRow, p, records int) {
	fmt.Fprintf(w, "Per-layer mean latency per span, %d records, p=%d (client spans are whole ops):\n", records, p)
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "method\tclient ops\tclient mean\tclient p95\tserver\tlfs\tdisk")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\t%s\t%s\n",
			r.Method, r.ClientOps, fmtDur(r.Client), fmtDur(r.ClientP95),
			fmtDur(r.Server), fmtDur(r.LFS), fmtDur(r.Disk))
	}
	tw.Flush()
}
