package experiments

import (
	"fmt"
	"time"

	"bridge/internal/core"
	"bridge/internal/sim"
	"bridge/internal/workload"
)

// Table2Point holds one processor count's basic-operation costs.
type Table2Point struct {
	P int
	// CreateTime and OpenTime are whole-operation costs.
	CreateTime time.Duration
	OpenTime   time.Duration
	// ReadPerBlock and WritePerBlock are amortized sequential costs over
	// the standard file.
	ReadPerBlock  time.Duration
	WritePerBlock time.Duration
	// DeleteTotal is the whole-file delete; DeleteCoeff is the fitted c
	// in c*n/p (milliseconds).
	DeleteTotal time.Duration
	DeleteCoeff float64
	// ReadSmallPerBlock is the amortized read cost on a file a quarter
	// the size, exposing the startup term of Read = a + b*p/n.
	ReadSmallPerBlock time.Duration
	// ReadBatchPerBlock is the amortized sequential cost through the
	// batched naive read (SeqReadN with server read-ahead): the same
	// interface shape, but each request scatter-gathers a run of blocks
	// across all p disks while the next window prefetches. Measured on a
	// separate cluster so the per-block columns keep the paper's
	// one-block-per-round-trip behavior.
	ReadBatchPerBlock time.Duration
}

// Table2Result reproduces Table 2 of the paper.
type Table2Result struct {
	Records int
	Points  []Table2Point
	// Fitted constants for the paper's formulas.
	CreateBase, CreateSlope float64 // ms, ms/processor: paper 145 + 17.5p
	ReadBase, ReadSlope     float64 // ms, ms*blocks/proc: paper 9.0 + 500p/n
	WriteMean               float64 // ms: paper 31
	OpenMean                float64 // ms: paper 80
	DeleteCoeffMean         float64 // ms: paper 20*n/p
}

// PaperTable2 holds the published formulas for side-by-side display.
var PaperTable2 = map[string]string{
	"Delete": "20 * filesize/p ms",
	"Create": "145 + 17.5p ms",
	"Open":   "80 ms",
	"Read":   "9.0 + 500p/filesize ms",
	"Write":  "31 ms",
}

// Table2 measures the five basic operations across the processor sweep
// using the naive interface, as the paper did ("a simple program that uses
// the naive interface to the Bridge server in order to read and write files
// sequentially").
func Table2(cfg Config) (*Table2Result, error) {
	cfg.applyDefaults()
	if cfg.CacheBlocks == 0 {
		// A small cache (two tracks) keeps sequential reads track-
		// buffered without letting whole test files go cache-resident,
		// which would hide the Read startup term.
		cfg.CacheBlocks = 16
	}
	res := &Table2Result{Records: cfg.Records}
	for _, p := range cfg.Ps {
		pt := Table2Point{P: p}
		if err := measureTable2(p, cfg, &pt); err != nil {
			return nil, fmt.Errorf("table2 p=%d: %w", p, err)
		}
		if err := measureTable2Batched(p, cfg, &pt); err != nil {
			return nil, fmt.Errorf("table2 batched p=%d: %w", p, err)
		}
		res.Points = append(res.Points, pt)
	}
	res.fit(cfg)
	return res, nil
}

func (r *Table2Result) fit(cfg Config) {
	n := float64(len(r.Points))
	if n == 0 {
		return
	}
	// Least squares for Create = a + b*p.
	var sx, sy, sxx, sxy float64
	for _, pt := range r.Points {
		x := float64(pt.P)
		y := float64(pt.CreateTime) / float64(time.Millisecond)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den != 0 {
		r.CreateSlope = (n*sxy - sx*sy) / den
		r.CreateBase = (sy - r.CreateSlope*sx) / n
	}
	// Read = a + b*p/n: per point, b from the two file sizes, a from the
	// large file.
	var bSum, aSum float64
	small := float64(cfg.Records / 4)
	big := float64(cfg.Records)
	for _, pt := range r.Points {
		x1 := float64(pt.P) / big
		x2 := float64(pt.P) / small
		y1 := float64(pt.ReadPerBlock) / float64(time.Millisecond)
		y2 := float64(pt.ReadSmallPerBlock) / float64(time.Millisecond)
		if x2 != x1 {
			b := (y2 - y1) / (x2 - x1)
			bSum += b
			aSum += y1 - b*x1
		}
	}
	r.ReadSlope = bSum / n
	r.ReadBase = aSum / n
	for _, pt := range r.Points {
		r.WriteMean += float64(pt.WritePerBlock) / float64(time.Millisecond)
		r.OpenMean += float64(pt.OpenTime) / float64(time.Millisecond)
		r.DeleteCoeffMean += pt.DeleteCoeff
	}
	r.WriteMean /= n
	r.OpenMean /= n
	r.DeleteCoeffMean /= n
}

func measureTable2(p int, cfg Config, pt *Table2Point) error {
	return runSim(p, cfg, func(proc sim.Proc, cl *core.Cluster, c *core.Client) error {
		n := cfg.Records
		recs := workload.Records(cfg.Seed, n, cfg.PayloadBytes)

		// Create: average of a few fresh creates.
		const createTrials = 4
		start := proc.Now()
		for i := 0; i < createTrials; i++ {
			if _, err := c.Create(fmt.Sprintf("c%d", i)); err != nil {
				return err
			}
		}
		pt.CreateTime = (proc.Now() - start) / createTrials

		// Sequential write of the standard file.
		if _, err := c.Create("f"); err != nil {
			return err
		}
		start = proc.Now()
		for _, rec := range recs {
			if err := c.SeqWrite("f", rec); err != nil {
				return err
			}
		}
		pt.WritePerBlock = (proc.Now() - start) / time.Duration(n)

		// Open: average of a few opens of the populated file.
		const openTrials = 4
		start = proc.Now()
		for i := 0; i < openTrials; i++ {
			if _, err := c.Open("f"); err != nil {
				return err
			}
		}
		pt.OpenTime = (proc.Now() - start) / openTrials

		// Sequential read, amortized; the per-block average includes the
		// startup work (header and directory reads) that Read pays for
		// in Bridge's semi-stateless protocol.
		if _, err := c.Open("f"); err != nil {
			return err
		}
		start = proc.Now()
		for {
			_, eof, err := c.SeqRead("f")
			if err != nil {
				return err
			}
			if eof {
				break
			}
		}
		pt.ReadPerBlock = (proc.Now() - start) / time.Duration(n)

		// Same on a quarter-size file, to expose the startup term.
		smallN := n / 4
		if _, err := c.Create("small"); err != nil {
			return err
		}
		for i := 0; i < smallN; i++ {
			if err := c.SeqWrite("small", recs[i]); err != nil {
				return err
			}
		}
		if _, err := c.Open("small"); err != nil {
			return err
		}
		start = proc.Now()
		for {
			_, eof, err := c.SeqRead("small")
			if err != nil {
				return err
			}
			if eof {
				break
			}
		}
		pt.ReadSmallPerBlock = (proc.Now() - start) / time.Duration(smallN)

		// Delete the standard file.
		start = proc.Now()
		freed, err := c.Delete("f")
		if err != nil {
			return err
		}
		if freed != n {
			return fmt.Errorf("delete freed %d, want %d", freed, n)
		}
		pt.DeleteTotal = proc.Now() - start
		pt.DeleteCoeff = float64(pt.DeleteTotal) / float64(time.Millisecond) * float64(p) / float64(n)
		return nil
	})
}

// measureTable2Batched reads the standard file through SeqReadN on a
// cluster with read-ahead enabled — the batched-naive column. A separate
// simulation keeps the cache from perturbing the per-block measurements.
func measureTable2Batched(p int, cfg Config, pt *Table2Point) error {
	bcfg := cfg
	bcfg.ReadAhead = raStripes
	return runSim(p, bcfg, func(proc sim.Proc, cl *core.Cluster, c *core.Client) error {
		n := cfg.Records
		if err := fill(proc, c, cfg, "f"); err != nil {
			return err
		}
		if _, err := c.Open("f"); err != nil {
			return err
		}
		batch := 4 * p
		start := proc.Now()
		got := 0
		for {
			blocks, eof, err := c.SeqReadN("f", batch)
			if err != nil {
				return err
			}
			got += len(blocks)
			if eof {
				break
			}
		}
		if got != n {
			return fmt.Errorf("batched read returned %d blocks, want %d", got, n)
		}
		pt.ReadBatchPerBlock = (proc.Now() - start) / time.Duration(n)
		return nil
	})
}
