// Placement: compare the block-placement strategies of Section 3 on a live
// system — round-robin interleaving (Bridge's choice), chunking and hashing
// (Gamma's alternatives), and the disordered linked-list files the
// prototype also supported — by timing sequential and random access on
// each.
//
//	go run ./examples/placement
package main

import (
	"fmt"
	"log"
	"time"

	"bridge"
	"bridge/internal/distrib"
)

func main() {
	sys, err := bridge.New(bridge.Config{Nodes: 8})
	if err != nil {
		log.Fatal(err)
	}
	err = sys.Run(func(s *bridge.Session) error {
		const n = 64
		payload := func(i int) []byte { return []byte(fmt.Sprintf("block %02d", i)) }

		type variant struct {
			name string
			make func(name string) error
		}
		variants := []variant{
			{"round-robin", func(name string) error { return s.Create(name) }},
			{"chunked", func(name string) error {
				_, err := s.CreatePlaced(name, bridge.PlacementSpec{Kind: distrib.Chunked, TotalBlocks: n})
				return err
			}},
			{"hashed", func(name string) error {
				_, err := s.CreatePlaced(name, bridge.PlacementSpec{Kind: distrib.Hashed, Seed: 7})
				return err
			}},
			{"disordered", func(name string) error {
				_, err := s.CreateDisordered(name)
				return err
			}},
		}

		fmt.Printf("%-12s %-14s %-16s %-16s\n", "placement", "append/blk", "seq read/blk", "random read")
		for _, v := range variants {
			if err := v.make(v.name); err != nil {
				return fmt.Errorf("%s: %w", v.name, err)
			}
			start := s.Now()
			for i := 0; i < n; i++ {
				if err := s.Append(v.name, payload(i)); err != nil {
					return fmt.Errorf("%s append: %w", v.name, err)
				}
			}
			appendPer := (s.Now() - start) / n

			if _, err := s.Open(v.name); err != nil {
				return err
			}
			start = s.Now()
			for i := 0; i < n; i++ {
				if _, err := s.Read(v.name); err != nil {
					return fmt.Errorf("%s read: %w", v.name, err)
				}
			}
			seqPer := (s.Now() - start) / n

			start = s.Now()
			if _, err := s.ReadAt(v.name, n-1); err != nil {
				return fmt.Errorf("%s random read: %w", v.name, err)
			}
			random := s.Now() - start

			fmt.Printf("%-12s %-14v %-16v %-16v\n",
				v.name, appendPer.Round(100*time.Microsecond),
				seqPer.Round(100*time.Microsecond), random.Round(100*time.Microsecond))
		}
		fmt.Println("\nround-robin guarantees p consecutive blocks on p distinct nodes;")
		fmt.Println("disordered files scatter arbitrarily at the price of O(n) random access.")
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
