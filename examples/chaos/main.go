// Chaos: run the robustness stack end to end under deterministic fault
// injection. A lossy message window and a mid-write node crash hit a
// mirrored file; retries and degraded appends carry the writes through,
// health monitoring makes failover reads fast, and after the node restarts
// the file is repaired back to full redundancy — all at exactly
// reproducible virtual times.
//
//	go run ./examples/chaos [-seed N]
//
// Two runs with the same seed print identical output, including the trace
// fingerprint; a different seed injects a different fault pattern.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"hash/crc32"
	"log"
	"strings"
	"time"

	"bridge"
	"bridge/internal/fault"
)

func payload(i int) []byte {
	b := make([]byte, bridge.PayloadBytes)
	for j := range b {
		b[j] = byte(i*131 + j*7)
	}
	return b
}

func main() {
	seed := flag.Int64("seed", 42, "fault injector seed")
	flag.Parse()

	inj := bridge.NewFaultInjector(*seed)
	inj.MsgWindow(2*time.Second, 5*time.Second, fault.MsgFaults{
		DropProb:  0.05,
		DupProb:   0.05,
		DelayProb: 0.2,
		DelayMax:  20 * time.Millisecond,
	})
	inj.NodeSchedule(
		fault.NodeEvent{At: 7 * time.Second, Node: 2, Kind: fault.Crash},
		fault.NodeEvent{At: 16 * time.Second, Node: 2, Kind: fault.Restart},
	)

	sys, err := bridge.New(bridge.Config{
		Nodes:      4,
		Health:     &bridge.HealthConfig{},
		Retry:      &bridge.RetryPolicy{Seed: *seed},
		LFSTimeout: time.Second,
		Trace:      true,
		Fault:      inj,
	})
	if err != nil {
		log.Fatal(err)
	}

	var traceDump strings.Builder
	err = sys.Run(func(s *bridge.Session) error {
		s.SetTimeout(2 * time.Second)
		m, err := s.NewMirror("journal")
		if err != nil {
			return err
		}

		// Write through the chaos: the message window forces retries, and
		// the crash at 7s forces degraded appends into overflow files. The
		// moment the mirror first degrades, the monitor has just marked
		// node 2 Dead — probe the failure behavior right there.
		const n = 40
		probed := false
		for i := 0; i < n; i++ {
			if err := m.Append(payload(i)); err != nil {
				return fmt.Errorf("append %d: %w", i, err)
			}
			if !probed && m.Degraded() {
				probed = true
				fmt.Printf("[%8v] mirror degraded after append %d\n", s.Now(), i)
				states, err := s.Inspect().Health()
				if err != nil {
					return err
				}
				for j, st := range states {
					fmt.Printf("           node %d: %v\n", j, st.State)
				}
				// Failover read: block 2's primary copy lives on the dead
				// node; the shadow serves it fast — no 60s timeout.
				start := s.Now()
				if _, err := m.Read(2); err != nil {
					return err
				}
				fmt.Printf("[%8v] failover read of block 2 took %v\n", s.Now(), s.Now()-start)
				// A direct (unreplicated) touch of the dead node
				// fast-fails with the sentinel.
				if _, err := s.ReadAt("journal", 2); !errors.Is(err, bridge.ErrNodeDown) {
					return fmt.Errorf("expected ErrNodeDown, got %v", err)
				}
				fmt.Printf("[%8v] unreplicated read of block 2 fast-failed: node down\n", s.Now())
			}
			s.Proc().Sleep(300 * time.Millisecond)
		}
		fmt.Printf("[%8v] %d blocks appended; degraded=%v\n", s.Now(), n, m.Degraded())

		// Wait for the scheduled restart and health recovery, then repair.
		if until := 20*time.Second - s.Now(); until > 0 {
			s.Proc().Sleep(until)
		}
		files, err := s.RepairNode(2)
		if err != nil {
			return err
		}
		repaired, err := m.Resilver()
		if err != nil {
			return err
		}
		fmt.Printf("[%8v] node 2 repaired: %d files re-registered, %d blocks resilvered; degraded=%v\n",
			s.Now(), files, repaired, m.Degraded())

		// Verify every block.
		for i := int64(0); i < n; i++ {
			data, err := m.Read(i)
			if err != nil {
				return fmt.Errorf("read %d: %w", i, err)
			}
			if !bytes.Equal(data, payload(int(i))) {
				return fmt.Errorf("block %d corrupt", i)
			}
		}
		fmt.Printf("[%8v] all %d blocks verified intact\n", s.Now(), n)
		return s.Inspect().TraceDump(&traceDump)
	})
	if err != nil {
		log.Fatal(err)
	}

	st := inj.Stats()
	fmt.Printf("faults injected: %d dropped, %d duplicated, %d delayed msgs; %d crash, %d restart\n",
		st.Get("fault.msg_dropped"), st.Get("fault.msg_duplicated"), st.Get("fault.msg_delayed"),
		st.Get("fault.node_crashes"), st.Get("fault.node_restarts"))
	fmt.Printf("trace fingerprint (seed %d): %08x over %d bytes\n",
		*seed, crc32.ChecksumIEEE([]byte(traceDump.String())), traceDump.Len())
}
