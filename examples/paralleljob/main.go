// Paralleljob: use the second Bridge view — the parallel open — in which a
// job controller groups worker processes and every read moves t blocks at
// once, one to each worker (Section 4.1). Also demonstrates virtual
// parallelism: a job wider than the interleaving proceeds in lock-step
// groups of p, so it cannot beat the disks.
//
//	go run ./examples/paralleljob
package main

import (
	"fmt"
	"log"
	"time"

	"bridge"
	"bridge/internal/core"
	"bridge/internal/msg"
	"bridge/internal/sim"
)

func main() {
	const nodes = 4
	sys, err := bridge.New(bridge.Config{Nodes: nodes})
	if err != nil {
		log.Fatal(err)
	}
	err = sys.Run(func(s *bridge.Session) error {
		if err := s.Create("data"); err != nil {
			return err
		}
		const blocks = 64
		for i := 0; i < blocks; i++ {
			if err := s.Append("data", []byte(fmt.Sprintf("payload %02d", i))); err != nil {
				return err
			}
		}

		for _, t := range []int{1, nodes, 2 * nodes} {
			elapsed, err := jobRead(s, "data", t)
			if err != nil {
				return err
			}
			note := ""
			switch {
			case t < nodes:
				note = "(no parallelism)"
			case t == nodes:
				note = "(true parallelism: one block per disk per round)"
			default:
				note = "(virtual parallelism: lock-step groups of p)"
			}
			fmt.Printf("job width t=%2d: whole file read in %8v %s\n", t, elapsed.Round(time.Millisecond), note)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}

// jobRead reads the whole file through a parallel-open job of width t and
// returns the elapsed simulated time.
func jobRead(s *bridge.Session, name string, t int) (time.Duration, error) {
	cl := s.Cluster()
	proc := s.Proc()
	received := cl.Runtime().NewQueue(fmt.Sprintf("received.t%d", t))
	workers := make([]msg.Addr, t)
	jws := make([]*core.JobWorker, t)
	for w := 0; w < t; w++ {
		jw := core.NewJobWorker(cl.Net, 0, fmt.Sprintf("t%d.worker%d", t, w))
		jws[w] = jw
		workers[w] = jw.Addr()
		proc.Go(fmt.Sprintf("worker%d", w), func(wp sim.Proc) {
			for {
				d, ok := jw.Next(wp)
				if !ok {
					return
				}
				if !d.EOF {
					received.Send(d.Seq)
				}
			}
		})
	}
	job, err := s.Client().ParallelOpen(name, workers)
	if err != nil {
		return 0, err
	}
	start := proc.Now()
	total := 0
	for {
		delivered, eof, err := job.Read()
		if err != nil {
			return 0, err
		}
		for i := 0; i < delivered; i++ {
			if _, ok := received.Recv(proc); !ok {
				return 0, fmt.Errorf("receive queue closed")
			}
			total++
		}
		if eof {
			break
		}
	}
	elapsed := proc.Now() - start
	if err := job.Close(); err != nil {
		return 0, err
	}
	for _, jw := range jws {
		jw.Close()
	}
	received.Close()
	if int64(total) != job.Meta.Blocks {
		return 0, fmt.Errorf("read %d of %d blocks", total, job.Meta.Blocks)
	}
	return elapsed, nil
}
