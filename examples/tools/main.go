// Tools: run the paper's standard tools — copy, filters, grep, and the
// summary tool — and compare the tool copy's cost against a naive
// block-by-block copy through the Bridge Server, reproducing the O(n/p)
// versus O(n) contrast of Section 5.1.
//
//	go run ./examples/tools
package main

import (
	"errors"
	"fmt"
	"log"

	"bridge"
)

func main() {
	sys, err := bridge.New(bridge.Config{Nodes: 8})
	if err != nil {
		log.Fatal(err)
	}
	err = sys.Run(func(s *bridge.Session) error {
		// Build a text file.
		if err := s.Create("corpus"); err != nil {
			return err
		}
		const blocks = 128
		for i := 0; i < blocks; i++ {
			line := fmt.Sprintf("line %03d: the butterfly carries interleaved blocks over the bridge\n", i)
			if err := s.Append("corpus", []byte(line)); err != nil {
				return err
			}
		}

		// Tool copy: one ecopy worker per node.
		start := s.Now()
		if _, err := s.Copy("corpus", "corpus.copy"); err != nil {
			return err
		}
		toolTime := s.Now() - start

		// Naive copy through the server, for contrast.
		start = s.Now()
		if _, err := s.Open("corpus"); err != nil {
			return err
		}
		if err := s.Create("corpus.naive"); err != nil {
			return err
		}
		for {
			data, err := s.Read("corpus")
			if errors.Is(err, bridge.ErrEOF) {
				break
			}
			if err != nil {
				return err
			}
			if err := s.Append("corpus.naive", data); err != nil {
				return err
			}
		}
		naiveTime := s.Now() - start
		fmt.Printf("copying %d blocks on %d nodes:\n", blocks, s.Nodes())
		fmt.Printf("  copy tool:  %v\n", toolTime)
		fmt.Printf("  naive copy: %v (%.1fx slower)\n", naiveTime, float64(naiveTime)/float64(toolTime))

		// Filters: character translation and reversible encryption.
		if _, err := s.Filter("corpus", "corpus.upper", bridge.ToUpper); err != nil {
			return err
		}
		up, err := s.ReadAt("corpus.upper", 0)
		if err != nil {
			return err
		}
		fmt.Printf("translated: %.40q...\n", up)

		// Grep and summary information, computed on the storage nodes.
		g, err := s.Grep("corpus", []byte("butterfly"))
		if err != nil {
			return err
		}
		wc, err := s.WC("corpus")
		if err != nil {
			return err
		}
		fmt.Printf("grep 'butterfly': %d matches across %d blocks\n", len(g.Matches), g.Blocks)
		fmt.Printf("wc: %d bytes, %d words, %d lines\n", wc.Bytes, wc.Words, wc.Lines)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
