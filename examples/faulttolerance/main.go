// Faulttolerance: demonstrate the paper's closing observation — "a failure
// anywhere in the system is fatal; it ruins every file" — and the two
// remedies built on top of unmodified interleaved files: 2-way mirroring
// (the paper's "replication helps, but only at very high cost") and a
// parity column (the error-correcting scheme the paper saw "no obvious
// way" to build; this example shows one).
//
//	go run ./examples/faulttolerance
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"bridge"
)

func main() {
	sys, err := bridge.New(bridge.Config{Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	err = sys.Run(func(s *bridge.Session) error {
		s.SetTimeout(10 * time.Minute)
		payload := func(i int) []byte {
			b := make([]byte, bridge.PayloadBytes)
			for j := range b {
				b[j] = byte(i + j)
			}
			return b
		}

		// An ordinary interleaved file.
		if err := s.Create("plain"); err != nil {
			return err
		}
		const n = 9
		for i := 0; i < n; i++ {
			if err := s.Append("plain", payload(i)); err != nil {
				return err
			}
		}
		// A mirrored file and a parity-protected file.
		m, err := s.NewMirror("mirrored")
		if err != nil {
			return err
		}
		pf, err := s.NewParity("parity")
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			if err := m.Append(payload(i)); err != nil {
				return err
			}
			if err := pf.Append(payload(i)); err != nil {
				return err
			}
		}

		fmt.Println("failing storage node 1 ...")
		if err := s.FailNode(1); err != nil {
			return err
		}

		if _, err := s.ReadAt("plain", 1); err != nil {
			fmt.Printf("plain file:    block 1 LOST (%.60s...)\n", err.Error())
		} else {
			fmt.Println("plain file:    unexpectedly survived")
		}

		ok := true
		for i := int64(0); i < n; i++ {
			data, err := m.Read(i)
			if err != nil || !bytes.Equal(data, payload(int(i))) {
				ok = false
				break
			}
		}
		fmt.Printf("mirrored file: all %d blocks readable: %v (storage cost 2x)\n", n, ok)

		ok = true
		for i := int64(0); i < n; i++ {
			var data []byte
			var err error
			if int(i)%3 == 1 { // blocks on the failed node
				data, err = pf.Reconstruct(i)
			} else {
				data, err = pf.Read(i)
			}
			if err != nil || !bytes.Equal(data, payload(int(i))) {
				ok = false
				break
			}
		}
		fmt.Printf("parity file:   all %d blocks readable: %v (storage cost %d/%d)\n", n, ok, s.Nodes(), s.Nodes()-1)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
