// Sort: run the parallel external merge sort tool of Section 5.2 — local
// external sorts on every node followed by log2(p) passes of the
// token-ring parallel merge of Figure 4 — and report the two phases
// separately, as the paper's Table 4 does.
//
//	go run ./examples/sort
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"log"

	"bridge"
)

func main() {
	sys, err := bridge.New(bridge.Config{Nodes: 8, DiskBlocks: 16384})
	if err != nil {
		log.Fatal(err)
	}
	err = sys.Run(func(s *bridge.Session) error {
		// One record per block, random 8-byte keys, as in the paper
		// ("the records to be sorted are the same size as a disk
		// block").
		const records = 512
		if err := s.Create("unsorted"); err != nil {
			return err
		}
		state := uint64(42)
		for i := 0; i < records; i++ {
			state = state*6364136223846793005 + 1442695040888963407
			rec := make([]byte, 64)
			binary.BigEndian.PutUint64(rec, state)
			copy(rec[8:], fmt.Sprintf("record %d", i))
			if err := s.Append("unsorted", rec); err != nil {
				return err
			}
		}

		st, err := s.Sort("unsorted", "sorted", bridge.SortOptions{InCore: 64})
		if err != nil {
			return err
		}
		fmt.Printf("sorted %d records on %d nodes\n", st.Records, s.Nodes())
		fmt.Printf("  local sort phase: %v\n", st.LocalSort)
		fmt.Printf("  merge phase:      %v", st.Merge)
		fmt.Printf(" (passes:")
		for _, pt := range st.PassTimes {
			fmt.Printf(" %v", pt)
		}
		fmt.Printf(")\n  total:            %v\n", st.LocalSort+st.Merge)

		// Verify.
		all, err := s.ReadAll("sorted")
		if err != nil {
			return err
		}
		for i := 1; i < len(all); i++ {
			if bytes.Compare(all[i-1][:8], all[i][:8]) > 0 {
				return fmt.Errorf("output not sorted at record %d", i)
			}
		}
		fmt.Printf("verified: %d records in nondecreasing key order\n", len(all))
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
