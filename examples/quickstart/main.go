// Quickstart: boot a simulated 8-node Bridge file system, write an
// interleaved file through the naive interface, read it back, and look at
// how the blocks were placed.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bridge"
)

func main() {
	sys, err := bridge.New(bridge.Config{Nodes: 8})
	if err != nil {
		log.Fatal(err)
	}
	err = sys.Run(func(s *bridge.Session) error {
		if err := s.Create("greetings"); err != nil {
			return err
		}
		for i := 0; i < 20; i++ {
			payload := fmt.Sprintf("block %02d: hello from the Bridge file system", i)
			if err := s.Append("greetings", []byte(payload)); err != nil {
				return err
			}
		}

		info, err := s.Open("greetings")
		if err != nil {
			return err
		}
		fmt.Printf("file %q: %d blocks interleaved %s across %d nodes\n",
			info.Name, info.Blocks, info.Spec.Kind, info.Spec.P)
		layout, err := info.Layout()
		if err != nil {
			return err
		}
		for n := int64(0); n < 8; n++ {
			fmt.Printf("  global block %d -> node %d, local block %d\n",
				n, layout.NodeFor(n), layout.LocalFor(n))
		}

		blocks, err := s.ReadAll("greetings")
		if err != nil {
			return err
		}
		fmt.Printf("read back %d blocks; first: %q\n", len(blocks), blocks[0])
		fmt.Printf("simulated time elapsed: %v (15 ms Wren-class disks)\n", s.Now())
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
