// Customtool: build your own Bridge tool on the public API. The paper:
// "an application need not be a standard utility program to become a tool.
// Any process with knowledge of the middle-layer structure is a tool."
//
// This one computes a whole-file checksum and a per-node block histogram,
// with all data access node-local; only the tiny per-node summaries cross
// the network ("the exportation of user-level code allows data to be
// filtered ... before it must be moved").
//
//	go run ./examples/customtool
package main

import (
	"fmt"
	"hash/crc32"
	"log"

	"bridge"
	"bridge/internal/core"
)

func main() {
	sys, err := bridge.New(bridge.Config{Nodes: 8})
	if err != nil {
		log.Fatal(err)
	}
	err = sys.Run(func(s *bridge.Session) error {
		if err := s.Create("dataset"); err != nil {
			return err
		}
		const blocks = 96
		for i := 0; i < blocks; i++ {
			if err := s.Append("dataset", []byte(fmt.Sprintf("record %03d salt %x", i, i*i*2654435761))); err != nil {
				return err
			}
		}
		meta, err := s.Open("dataset")
		if err != nil {
			return err
		}

		type summary struct {
			Blocks int64
			CRC    uint64
		}
		start := s.Now()
		results, err := s.RunTool("crcsum", func(ctx *bridge.ToolCtx) (any, error) {
			var sum summary
			local := meta.LocalBlocks(ctx.Index)
			hint := int32(-1)
			for j := int64(0); j < local; j++ {
				raw, addr, err := ctx.LFS.Read(ctx.Node, meta.LFSFileID, uint32(j), hint)
				if err != nil {
					return nil, err
				}
				hint = addr
				_, payload, err := core.DecodeBlock(raw)
				if err != nil {
					return nil, err
				}
				sum.CRC += uint64(crc32.ChecksumIEEE(payload))
				sum.Blocks++
			}
			return sum, nil
		})
		if err != nil {
			return err
		}
		elapsed := s.Now() - start

		var total summary
		for i, r := range results {
			ns := r.(summary)
			fmt.Printf("node %d: %2d blocks, partial crc sum %012x\n", i, ns.Blocks, ns.CRC)
			total.Blocks += ns.Blocks
			total.CRC += ns.CRC
		}
		fmt.Printf("whole file: %d blocks, crc sum %012x, computed in %v on %d nodes\n",
			total.Blocks, total.CRC, elapsed, s.Nodes())
		fmt.Println("only the per-node summaries crossed the network.")
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
