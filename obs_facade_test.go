package bridge

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"strings"
	"testing"
	"time"
)

// obsWorkload exercises every layer: metadata ops, batched writes and reads,
// naive reads (read-ahead path), and a tool-framework copy.
func obsWorkload(s *Session) error {
	if err := s.Create("src"); err != nil {
		return err
	}
	blocks := make([][]byte, 12)
	for i := range blocks {
		blocks[i] = []byte{byte(i), byte(i >> 8)}
	}
	if _, err := s.AppendN("src", blocks); err != nil {
		return err
	}
	if _, err := s.ReadN("src", len(blocks)); err != nil {
		return err
	}
	if _, err := s.Open("src"); err != nil { // rewind the cursor
		return err
	}
	if _, err := s.Read("src"); err != nil { // naive path: read-ahead window
		return err
	}
	if _, err := s.Copy("src", "dst"); err != nil {
		return err
	}
	if _, err := s.Stat("dst"); err != nil {
		return err
	}
	return nil
}

func TestObsFacade(t *testing.T) {
	sys, err := New(Config{
		Nodes:       4,
		DiskBlocks:  256,
		DiskLatency: time.Millisecond,
		ReadAhead:   2,
		Obs:         &ObsConfig{SampleEvery: time.Millisecond},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var insp Inspector
	err = sys.Run(func(s *Session) error {
		if err := obsWorkload(s); err != nil {
			return err
		}
		// Metrics are readable mid-run.
		m := s.Metrics()
		if got := m.Counter("bridge.ra_hits"); got == 0 {
			t.Errorf("bridge.ra_hits = 0, want > 0 (naive read with ReadAhead set)")
		}
		h, ok := m.Histogram("client.create")
		if !ok || h.Count < 1 {
			t.Errorf("client.create histogram = %+v, ok=%v; want count >= 1", h, ok)
		}
		if h.Mean() <= 0 || h.P50 <= 0 {
			t.Errorf("client.create mean=%v p50=%v, want > 0", h.Mean(), h.P50)
		}
		insp = s.Inspect()
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	// After Run the simulation has drained: every span (including async
	// read-ahead prefetches) must have closed exactly once.
	if n := insp.OpenSpans(); n != 0 {
		t.Errorf("OpenSpans = %d, want 0", n)
	}
	if n := insp.DoubleEnds(); n != 0 {
		t.Errorf("DoubleEnds = %d, want 0", n)
	}
	if n := insp.DroppedSpans(); n != 0 {
		t.Errorf("DroppedSpans = %d, want 0", n)
	}

	layers := map[string]bool{}
	for _, sp := range insp.Spans() {
		if sp.End < sp.Start {
			t.Errorf("span %s: End %v < Start %v", sp.Kind, sp.End, sp.Start)
		}
		if i := strings.IndexByte(sp.Kind, '.'); i > 0 {
			layers[sp.Kind[:i]] = true
		}
	}
	for _, want := range []string{"client", "server", "lfs", "disk"} {
		if !layers[want] {
			t.Errorf("no %s.* spans recorded (layers seen: %v)", want, layers)
		}
	}

	var trace bytes.Buffer
	if err := insp.WriteChromeTrace(&trace); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace.Bytes(), &parsed); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}

	var top bytes.Buffer
	if err := insp.WriteTop(&top); err != nil {
		t.Fatalf("WriteTop: %v", err)
	}
	if !strings.Contains(top.String(), "node") {
		t.Errorf("WriteTop output missing per-node rows:\n%s", top.String())
	}
}

func TestObsDisabledExports(t *testing.T) {
	sys := fastSystem(t, 2)
	err := sys.Run(func(s *Session) error {
		if err := s.Create("f"); err != nil {
			return err
		}
		insp := s.Inspect()
		if err := insp.WriteChromeTrace(&bytes.Buffer{}); !errors.Is(err, ErrObsDisabled) {
			t.Errorf("WriteChromeTrace without Obs: err = %v, want ErrObsDisabled", err)
		}
		if err := insp.WriteTop(&bytes.Buffer{}); !errors.Is(err, ErrObsDisabled) {
			t.Errorf("WriteTop without Obs: err = %v, want ErrObsDisabled", err)
		}
		if got := insp.Spans(); got != nil {
			t.Errorf("Spans without Obs = %d spans, want nil", len(got))
		}
		// Typed metrics work without the recorder; histograms are nil.
		m := s.Metrics()
		if len(m.Values) == 0 {
			t.Error("MetricsSnapshot.Values empty; typed metrics should not require Obs")
		}
		if m.Histograms != nil {
			t.Errorf("Histograms without Obs = %v, want nil", m.Histograms)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestObsTraceDeterministic runs the same workload twice and requires both
// exporters to produce byte-identical output — the property the CI
// trace-diff job enforces on a full chaos run.
func TestObsTraceDeterministic(t *testing.T) {
	run := func() (trace, top string) {
		t.Helper()
		sys, err := New(Config{
			Nodes:       4,
			DiskBlocks:  256,
			DiskLatency: time.Millisecond,
			ReadAhead:   2,
			Obs:         &ObsConfig{SampleEvery: time.Millisecond},
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		var insp Inspector
		if err := sys.Run(func(s *Session) error {
			insp = s.Inspect()
			return obsWorkload(s)
		}); err != nil {
			t.Fatalf("Run: %v", err)
		}
		var tr, tp bytes.Buffer
		if err := insp.WriteChromeTrace(&tr); err != nil {
			t.Fatalf("WriteChromeTrace: %v", err)
		}
		if err := insp.WriteTop(&tp); err != nil {
			t.Fatalf("WriteTop: %v", err)
		}
		return tr.String(), tp.String()
	}
	trace1, top1 := run()
	trace2, top2 := run()
	if trace1 != trace2 {
		t.Error("Chrome traces differ between identical runs")
	}
	if top1 != top2 {
		t.Error("WriteTop reports differ between identical runs")
	}
}

// TestMetricsDocUpToDate keeps metrics.md in sync with the registered
// metrics. Regenerate with:
//
//	UPDATE_METRICS_DOC=1 go test . -run TestMetricsDocUpToDate
func TestMetricsDocUpToDate(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMetricsDoc(&buf); err != nil {
		t.Fatalf("WriteMetricsDoc: %v", err)
	}
	const path = "metrics.md"
	if os.Getenv("UPDATE_METRICS_DOC") != "" {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("write %s: %v", path, err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v (regenerate with UPDATE_METRICS_DOC=1 go test . -run TestMetricsDocUpToDate)", path, err)
	}
	if !bytes.Equal(want, buf.Bytes()) {
		t.Errorf("%s is stale; regenerate with UPDATE_METRICS_DOC=1 go test . -run TestMetricsDocUpToDate", path)
	}
}
