package bridge

import (
	"testing"
)

// TestCleanShutdownDurable is the facade durability contract: with
// Config.DataDir and Config.Journal set, everything written before a clean
// Run exit must survive into a second System that remounts the same
// directory — no explicit Sync required, because Run quiesces every live
// volume on shutdown. The Bridge name directory itself is a single
// in-memory authority (see ROADMAP: metadata HA), so the second process
// verifies at the volume level: clean recovery reports and the exact
// number of chain blocks.
func TestCleanShutdownDurable(t *testing.T) {
	const nodes, blocks = 4, 32
	dir := t.TempDir()
	cfg := Config{Nodes: nodes, DiskBlocks: 512, Journal: 64, DataDir: dir}

	sys, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	err = sys.Run(func(s *Session) error {
		if err := s.Create("f"); err != nil {
			return err
		}
		for i := 0; i < blocks; i++ {
			if err := s.Append("f", robustPayload(i)); err != nil {
				return err
			}
		}
		// No Sync: the clean exit below is the durability point under test.
		return nil
	})
	if err != nil {
		t.Fatalf("write run: %v", err)
	}

	sys2, err := New(cfg)
	if err != nil {
		t.Fatalf("New (remount): %v", err)
	}
	err = sys2.Run(func(s *Session) error {
		chain := 0
		for i := 0; i < nodes; i++ {
			rep, err := s.Inspect().Recovery(i)
			if err != nil {
				t.Errorf("node %d: recovery report: %v", i, err)
				continue
			}
			if !rep.Journaled || !rep.Clean() {
				t.Errorf("node %d: remount recovery not clean: journaled %v, fsck err %q, problems %v",
					i, rep.Journaled, rep.FsckErr, rep.Fsck.Problems)
			}
			ck, err := s.Fsck(i)
			if err != nil {
				t.Errorf("node %d: fsck: %v", i, err)
				continue
			}
			chain += ck.ChainBlocks
		}
		if chain != blocks {
			t.Errorf("remounted volumes hold %d chain blocks, want %d", chain, blocks)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("remount run: %v", err)
	}
}

// TestSessionSyncDurable proves the explicit barrier: after Session.Sync
// returns, the data is on stable storage even if the process never exits
// cleanly — modeled here by kill-9ing every node before the run ends.
func TestSessionSyncDurable(t *testing.T) {
	const nodes, blocks = 4, 16
	dir := t.TempDir()
	cfg := Config{Nodes: nodes, DiskBlocks: 512, Journal: 64, DataDir: dir}

	sys, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	err = sys.Run(func(s *Session) error {
		if err := s.Create("f"); err != nil {
			return err
		}
		for i := 0; i < blocks; i++ {
			if err := s.Append("f", robustPayload(i)); err != nil {
				return err
			}
		}
		if err := s.Sync(); err != nil {
			return err
		}
		// Power-cut every node after the barrier: whatever the volatile
		// write caches still held is lost, the synced state is not.
		for i := 0; i < nodes; i++ {
			if err := s.CrashNode(i); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("write run: %v", err)
	}

	sys2, err := New(cfg)
	if err != nil {
		t.Fatalf("New (remount): %v", err)
	}
	err = sys2.Run(func(s *Session) error {
		chain := 0
		for i := 0; i < nodes; i++ {
			rep, err := s.Inspect().Recovery(i)
			if err != nil {
				t.Errorf("node %d: recovery report: %v", i, err)
				continue
			}
			if !rep.Journaled || !rep.Clean() {
				t.Errorf("node %d: remount recovery not clean: journaled %v, fsck err %q, problems %v",
					i, rep.Journaled, rep.FsckErr, rep.Fsck.Problems)
			}
			ck, err := s.Fsck(i)
			if err != nil {
				t.Errorf("node %d: fsck: %v", i, err)
				continue
			}
			chain += ck.ChainBlocks
		}
		if chain != blocks {
			t.Errorf("remounted volumes hold %d chain blocks, want %d", chain, blocks)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("remount run: %v", err)
	}
}
