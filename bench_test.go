package bridge

// One benchmark per table and figure of the paper's evaluation, plus the
// ablation benches DESIGN.md calls out. Each iteration runs the full
// experiment in simulated time and reports simulated metrics (sim_ms,
// rec_per_sec) alongside the usual host-side ns/op.
//
// By default the benches run at a reduced scale that preserves every
// experiment's shape (see experiments.QuickScale). Set
// BRIDGE_BENCH_SCALE=paper to run the paper's full 10 MB / 10240-record
// configuration, as used to produce EXPERIMENTS.md.

import (
	"os"
	"testing"
	"time"

	"bridge/internal/experiments"
)

func benchConfig() experiments.Config {
	if os.Getenv("BRIDGE_BENCH_SCALE") == "paper" {
		return experiments.PaperScale()
	}
	return experiments.QuickScale()
}

func reportSim(b *testing.B, name string, d time.Duration) {
	b.ReportMetric(float64(d)/float64(time.Millisecond), name+"_sim_ms")
}

// BenchmarkTable2BasicOps regenerates Table 2: Create, Open, Read, Write,
// Delete costs across the processor sweep.
func BenchmarkTable2BasicOps(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last := res.Points[len(res.Points)-1]
		reportSim(b, "create_pmax", last.CreateTime)
		reportSim(b, "open_pmax", last.OpenTime)
		reportSim(b, "read_blk_pmax", last.ReadPerBlock)
		reportSim(b, "write_blk_pmax", last.WritePerBlock)
	}
}

// BenchmarkTable3Copy regenerates Table 3 and the copy records/second
// figure.
func BenchmarkTable3Copy(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3Copy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		first, last := rows[0], rows[len(rows)-1]
		reportSim(b, "copy_pmin", first.Time)
		reportSim(b, "copy_pmax", last.Time)
		b.ReportMetric(last.RecPerSec, "rec_per_sec_pmax")
		b.ReportMetric(last.Speedup, "speedup_pmax")
	}
}

// BenchmarkTable4Sort regenerates Table 4 and the sort figures.
func BenchmarkTable4Sort(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table4Sort(cfg)
		if err != nil {
			b.Fatal(err)
		}
		first, last := rows[0], rows[len(rows)-1]
		reportSim(b, "sort_total_pmin", first.Total)
		reportSim(b, "sort_total_pmax", last.Total)
		reportSim(b, "sort_local_pmax", last.Local)
		reportSim(b, "sort_merge_pmax", last.Merge)
		b.ReportMetric(last.RecPerSec, "rec_per_sec_pmax")
	}
}

// BenchmarkPlacement regenerates the Section 3 placement ablation (A1).
func BenchmarkPlacement(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, reorg, err := experiments.Placement(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var hashedLoad float64
		for _, r := range rows {
			if r.Strategy == "hashed" {
				hashedLoad = r.MeanMaxLoad
			}
		}
		b.ReportMetric(hashedLoad, "hashed_max_load_pmax")
		b.ReportMetric(float64(reorg[len(reorg)-1].MovedChunk), "chunk_moves_pmax")
	}
}

// BenchmarkCreateTree regenerates the A2 ablation: sequential vs
// binary-tree Create initiation.
func BenchmarkCreateTree(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.CreateTree(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		reportSim(b, "create_seq_pmax", last.Sequential)
		reportSim(b, "create_tree_pmax", last.Tree)
	}
}

// BenchmarkParallelOpen regenerates the A3 ablation: job width vs
// throughput, showing the lock-step plateau past p.
func BenchmarkParallelOpen(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ParallelOpen(cfg, 8, []int{1, 2, 4, 8, 16})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[3].RecPerSec, "rec_per_sec_t8")
		b.ReportMetric(rows[4].RecPerSec, "rec_per_sec_t16")
	}
}

// BenchmarkToolVsNaive regenerates the A4 access-method comparison.
func BenchmarkToolVsNaive(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ToolVsNaive(cfg, 8)
		if err != nil {
			b.Fatal(err)
		}
		reportSim(b, "seqfs", rows[0].Time)
		reportSim(b, "naive", rows[1].Time)
		reportSim(b, "naive_batched", rows[2].Time)
		reportSim(b, "job", rows[3].Time)
		reportSim(b, "tool", rows[4].Time)
	}
}

// BenchmarkDisordered regenerates the A5 ablation: linked-list files vs
// strict interleaving (Section 3's trade-off).
func BenchmarkDisordered(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Disordered(cfg, 8)
		if err != nil {
			b.Fatal(err)
		}
		reportSim(b, "rand_rr", res.RandRR)
		reportSim(b, "rand_chain", res.RandChain)
	}
}

// BenchmarkServerScaling regenerates the A6 ablation: a distributed
// collection of Bridge Server processes relieving the central bottleneck.
func BenchmarkServerScaling(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ServerScaling(cfg, 8, 8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].RecPerSec, "rec_per_sec_1srv")
		b.ReportMetric(rows[len(rows)-1].RecPerSec, "rec_per_sec_4srv")
	}
}

// BenchmarkReplica regenerates the A4 fault experiment: failure ruin,
// mirroring and parity overheads.
func BenchmarkReplica(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Faults(cfg, 4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.MirrorWriteFactor, "mirror_write_x")
		b.ReportMetric(rep.ParityWriteFactor, "parity_write_x")
		b.ReportMetric(rep.ParityDegradedReadFactor, "degraded_read_x")
	}
}

// BenchmarkNaiveSequentialRead is a microbenchmark of the naive read path
// (Table 2's Read row in isolation) at p=8.
func BenchmarkNaiveSequentialRead(b *testing.B) {
	cfg := benchConfig()
	cfg.Ps = []int{8}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportSim(b, "read_blk", res.Points[0].ReadPerBlock)
	}
}

// BenchmarkNaiveBatchedRead is the same sequential read through the
// batched naive interface (SeqReadN + server read-ahead) at p=8; compare
// its read_blk_sim_ms with BenchmarkNaiveSequentialRead's.
func BenchmarkNaiveBatchedRead(b *testing.B) {
	cfg := benchConfig()
	cfg.Ps = []int{8}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportSim(b, "read_blk", res.Points[0].ReadBatchPerBlock)
	}
}
