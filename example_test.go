package bridge_test

import (
	"fmt"
	"log"
	"time"

	"bridge"
)

// The quickest possible tour: create an interleaved file, append, read.
func ExampleSystem_Run() {
	sys, err := bridge.New(bridge.Config{Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	err = sys.Run(func(s *bridge.Session) error {
		if err := s.Create("greeting"); err != nil {
			return err
		}
		if err := s.Append("greeting", []byte("hello, interleaved world")); err != nil {
			return err
		}
		data, err := s.ReadAt("greeting", 0)
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output: hello, interleaved world
}

// Tools run where the data lives: the copy tool moves every block
// node-locally, in O(n/p + log p).
func ExampleSession_Copy() {
	sys, err := bridge.New(bridge.Config{Nodes: 4, DiskLatency: time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	err = sys.Run(func(s *bridge.Session) error {
		if err := s.Create("src"); err != nil {
			return err
		}
		for i := 0; i < 8; i++ {
			if err := s.Append("src", []byte{byte(i)}); err != nil {
				return err
			}
		}
		st, err := s.Copy("src", "dst")
		if err != nil {
			return err
		}
		fmt.Printf("copied %d blocks\n", st.Blocks)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output: copied 8 blocks
}

// The placement of an interleaved file follows the paper's formula: block
// n lives on node (n+k) mod p as local block n div p.
func ExampleFileInfo_Layout() {
	sys, err := bridge.New(bridge.Config{Nodes: 3})
	if err != nil {
		log.Fatal(err)
	}
	err = sys.Run(func(s *bridge.Session) error {
		if err := s.Create("f"); err != nil {
			return err
		}
		info, err := s.Open("f")
		if err != nil {
			return err
		}
		layout, err := info.Layout()
		if err != nil {
			return err
		}
		for n := int64(0); n < 6; n++ {
			fmt.Printf("block %d -> node %d local %d\n", n, layout.NodeFor(n), layout.LocalFor(n))
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output:
	// block 0 -> node 0 local 0
	// block 1 -> node 1 local 0
	// block 2 -> node 2 local 0
	// block 3 -> node 0 local 1
	// block 4 -> node 1 local 1
	// block 5 -> node 2 local 1
}
