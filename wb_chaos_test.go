package bridge

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"bridge/internal/efs"
)

// TestWriteBehindCrashMidGroupCommit kill-9s every node while a
// write-behind group commit is in flight. The contract: blocks covered
// by the last Flush survive, unflushed acknowledgements may be lost, and
// every remounted volume replays its journal to a clean, fsck-verified
// state — a torn group commit never corrupts a chain.
func TestWriteBehindCrashMidGroupCommit(t *testing.T) {
	const nodes, flushed, buffered = 4, 16, 13
	dir := t.TempDir()
	cfg := Config{Nodes: nodes, DiskBlocks: 512, Journal: 64, DataDir: dir, WriteBehind: 2}

	sys, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	err = sys.Run(func(s *Session) error {
		if err := s.Create("f"); err != nil {
			return err
		}
		for i := 0; i < flushed; i++ {
			if err := s.Append("f", robustPayload(i)); err != nil {
				return err
			}
		}
		// The durability point: drain the buffer and sync f's nodes.
		if _, err := s.Flush("f"); err != nil {
			return err
		}
		// Refill the buffer; at window 2 stripes (8 blocks) this leaves a
		// vectored group commit in flight and more blocks still buffered.
		for i := 0; i < buffered; i++ {
			if err := s.Append("f", robustPayload(flushed+i)); err != nil {
				return err
			}
		}
		for i := 0; i < nodes; i++ {
			if err := s.CrashNode(i); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("write run: %v", err)
	}

	sys2, err := New(cfg)
	if err != nil {
		t.Fatalf("New (remount): %v", err)
	}
	err = sys2.Run(func(s *Session) error {
		chain := 0
		for i := 0; i < nodes; i++ {
			rep, err := s.Inspect().Recovery(i)
			if err != nil {
				t.Errorf("node %d: recovery report: %v", i, err)
				continue
			}
			if !rep.Journaled || !rep.Clean() {
				t.Errorf("node %d: remount recovery not clean: journaled %v, fsck err %q, problems %v",
					i, rep.Journaled, rep.FsckErr, rep.Fsck.Problems)
			}
			ck, err := s.Fsck(i)
			if err != nil {
				t.Errorf("node %d: fsck: %v", i, err)
				continue
			}
			if len(ck.Problems) != 0 {
				t.Errorf("node %d: fsck problems after torn group commit: %v", i, ck.Problems)
			}
			chain += ck.ChainBlocks
		}
		if chain < flushed || chain > flushed+buffered {
			t.Errorf("remounted volumes hold %d chain blocks, want %d..%d",
				chain, flushed, flushed+buffered)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("remount run: %v", err)
	}
}

// TestParallelDeleteCrashRecovery kill-9s every node right after a
// parallel delete returns, before any sync barrier: some nodes' frees
// reach the media and others' do not. Remounted volumes must replay
// their journals cleanly, and FsckRepair must converge each bitmap with
// its reachable chains, leaving every volume clean and fully usable.
func TestParallelDeleteCrashRecovery(t *testing.T) {
	const nodes, blocks = 4, 24
	dir := t.TempDir()
	cfg := Config{Nodes: nodes, DiskBlocks: 512, Journal: 64, DataDir: dir, ParallelDelete: true}

	sys, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var fileID uint32
	err = sys.Run(func(s *Session) error {
		if err := s.Create("f"); err != nil {
			return err
		}
		for i := 0; i < blocks; i++ {
			if err := s.Append("f", robustPayload(i)); err != nil {
				return err
			}
		}
		if err := s.Sync(); err != nil {
			return err
		}
		meta, err := s.Stat("f")
		if err != nil {
			return err
		}
		fileID = meta.LFSFileID
		freed, err := s.Delete("f")
		if err != nil {
			return err
		}
		if freed != blocks {
			t.Errorf("parallel delete freed %d blocks, want %d", freed, blocks)
		}
		if _, err := s.Stat("f"); !errors.Is(err, ErrNotFound) {
			t.Errorf("Stat after delete = %v; want ErrNotFound", err)
		}
		for i := 0; i < nodes; i++ {
			if err := s.CrashNode(i); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("delete run: %v", err)
	}

	sys2, err := New(cfg)
	if err != nil {
		t.Fatalf("New (remount): %v", err)
	}
	err = sys2.Run(func(s *Session) error {
		for i := 0; i < nodes; i++ {
			rep, err := s.Inspect().Recovery(i)
			if err != nil {
				t.Errorf("node %d: recovery report: %v", i, err)
				continue
			}
			if !rep.Journaled || !rep.Clean() {
				t.Errorf("node %d: remount recovery not clean: journaled %v, fsck err %q, problems %v",
					i, rep.Journaled, rep.FsckErr, rep.Fsck.Problems)
			}
		}
		// Re-drive the torn delete: the per-node fast delete is idempotent
		// (a node whose free reached the media reports not-found), so
		// replaying it converges every volume to the deleted state.
		if _, err := s.RunTool("edelete-replay", func(ctx *ToolCtx) (any, error) {
			freed, err := ctx.LFS.DeleteFast(ctx.Node, fileID)
			if errors.Is(err, efs.ErrNotFound) {
				return 0, nil
			}
			return freed, err
		}); err != nil {
			return err
		}
		// Converge each bitmap with its reachable chains and verify clean.
		for i := 0; i < nodes; i++ {
			if _, _, err := s.FsckRepair(i); err != nil {
				t.Errorf("node %d: fsck repair: %v", i, err)
				continue
			}
			ck, err := s.Fsck(i)
			if err != nil {
				t.Errorf("node %d: fsck after repair: %v", i, err)
				continue
			}
			if len(ck.Problems) != 0 {
				t.Errorf("node %d: problems after repair: %v", i, ck.Problems)
			}
		}
		// The volumes stay fully usable: a fresh file round-trips.
		if err := s.Create("g"); err != nil {
			return err
		}
		for i := 0; i < blocks; i++ {
			if err := s.Append("g", robustPayload(100+i)); err != nil {
				return err
			}
		}
		got, err := s.ReadAll("g")
		if err != nil {
			return err
		}
		for i, b := range got {
			if !bytes.Equal(b, robustPayload(100+i)) {
				t.Errorf("block %d differs after recovery", i)
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("remount run: %v", err)
	}
}

// TestWriteCampaignTraceDeterministic runs the whole PR 8 write path —
// write-behind appends, an explicit Flush, a parallel delete, and a
// recreate — twice under the span recorder and requires byte-identical
// Chrome traces: the relaxed write path keeps the simulation replayable.
func TestWriteCampaignTraceDeterministic(t *testing.T) {
	run := func() string {
		t.Helper()
		sys, err := New(Config{
			Nodes:          4,
			DiskBlocks:     256,
			DiskLatency:    time.Millisecond,
			WriteBehind:    2,
			ParallelDelete: true,
			Obs:            &ObsConfig{SampleEvery: time.Millisecond},
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		var insp Inspector
		if err := sys.Run(func(s *Session) error {
			if err := s.Create("f"); err != nil {
				return err
			}
			for i := 0; i < 20; i++ {
				if err := s.Append("f", robustPayload(i)); err != nil {
					return err
				}
			}
			if _, err := s.Flush("f"); err != nil {
				return err
			}
			if _, err := s.Delete("f"); err != nil {
				return err
			}
			if err := s.Create("f"); err != nil {
				return err
			}
			for i := 0; i < 8; i++ {
				if err := s.Append("f", robustPayload(50+i)); err != nil {
					return err
				}
			}
			if err := s.Sync(); err != nil {
				return err
			}
			m := s.Metrics()
			if m.Counter("bridge.wb_flushes") == 0 {
				t.Error("no write-behind flushes recorded")
			}
			if m.Counter("bridge.pdel_files") != 1 {
				t.Errorf("pdel_files = %d, want 1", m.Counter("bridge.pdel_files"))
			}
			insp = s.Inspect()
			return nil
		}); err != nil {
			t.Fatalf("Run: %v", err)
		}
		var tr bytes.Buffer
		if err := insp.WriteChromeTrace(&tr); err != nil {
			t.Fatalf("WriteChromeTrace: %v", err)
		}
		return tr.String()
	}
	if run() != run() {
		t.Error("Chrome traces differ between identical write-campaign runs")
	}
}

// TestWriteBehindLeaderFailoverDeferred kill-9s the replicated leader
// while it holds acknowledged-but-unlanded write-behind blocks. The
// failover contract extends the flush-failure contract: the new leader
// rolls the file back to its durable prefix, the first operation to touch
// it surfaces ErrDeferredWrite exactly once, and everything before the
// explicit Flush durability point survives byte-for-byte.
func TestWriteBehindLeaderFailoverDeferred(t *testing.T) {
	const nodes, flushed, buffered = 4, 16, 13
	cfg := Config{
		Nodes: nodes, DiskBlocks: 512, Journal: 64, DataDir: t.TempDir(),
		WriteBehind: 2, Replicas: 3,
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	err = sys.Run(func(s *Session) error {
		if err := s.Create("f"); err != nil {
			return err
		}
		for i := 0; i < flushed; i++ {
			if err := s.Append("f", robustPayload(i)); err != nil {
				return err
			}
		}
		// The durability point: every acknowledged block is on the media.
		if _, err := s.Flush("f"); err != nil {
			return err
		}
		// Refill the buffer: at window 2 stripes (8 blocks) one group
		// commit goes in flight and the remainder sits buffered on the
		// leader — volatile state the kill destroys.
		for i := 0; i < buffered; i++ {
			if err := s.Append("f", robustPayload(flushed+i)); err != nil {
				return err
			}
		}
		lead := s.LeaderServer(0)
		if lead < 0 {
			return errors.New("no leader while appending")
		}
		if err := s.CrashServer(0, lead); err != nil {
			return err
		}
		// The new leader reconciles the orphaned write-behind state during
		// takeover; the first operation touching f pays the deferred error.
		_, err := s.Stat("f")
		if !errors.Is(err, ErrDeferredWrite) {
			return fmt.Errorf("first op after failover = %v, want ErrDeferredWrite", err)
		}
		// Exactly once: the error is consumed, and the rolled-back size is
		// the durable prefix — nothing before the Flush may be lost.
		info, err := s.Stat("f")
		if err != nil {
			return fmt.Errorf("second stat after failover: %w", err)
		}
		if info.Blocks < flushed || info.Blocks > flushed+buffered {
			return fmt.Errorf("rolled-back size %d, want %d..%d", info.Blocks, flushed, flushed+buffered)
		}
		for i := 0; i < flushed; i++ {
			b, err := s.ReadAt("f", int64(i))
			if err != nil {
				return fmt.Errorf("read %d after rollback: %w", i, err)
			}
			if !bytes.Equal(b, robustPayload(i)) {
				return fmt.Errorf("block %d corrupted by rollback", i)
			}
		}
		// The file stays fully usable: appends land at the rolled-back
		// size and read back.
		at := info.Blocks
		if err := s.Append("f", robustPayload(999)); err != nil {
			return fmt.Errorf("append after rollback: %w", err)
		}
		if _, err := s.Flush("f"); err != nil {
			return fmt.Errorf("flush after rollback: %w", err)
		}
		b, err := s.ReadAt("f", at)
		if err != nil || !bytes.Equal(b, robustPayload(999)) {
			return fmt.Errorf("append after rollback did not land: %v", err)
		}
		// The revived replica rejoins as a follower and catches up.
		if err := s.RestartServer(0, lead); err != nil {
			return err
		}
		if err := s.Append("f", robustPayload(1000)); err != nil {
			return err
		}
		s.Proc().Sleep(time.Second)
		st := s.Inspect().Raft(0)
		if st[lead].Commit != st[s.LeaderServer(0)].Commit {
			return fmt.Errorf("revived replica behind: %+v", st)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}
