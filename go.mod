module bridge

go 1.22
