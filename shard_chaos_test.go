package bridge

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"testing"
	"time"

	"bridge/internal/fault"
)

// shardName returns the i-th deterministic name that hashes to the wanted
// shard group — the same candidate walk in every process, so traces and
// schedules agree on which group serves which file.
func shardName(t *testing.T, s *Session, shard, i int) string {
	t.Helper()
	hits := 0
	for n := 0; n < 1<<16; n++ {
		cand := fmt.Sprintf("sf-%d", n)
		if s.ShardOf(cand) == shard {
			if hits == i {
				return cand
			}
			hits++
		}
	}
	t.Fatalf("no name %d on shard %d", i, shard)
	return ""
}

// shardFailoverWorkload hammers every shard group while the chaos
// schedule kills leaders one shard at a time. The byte trace records each
// observed result — append acks, stat sizes, read prefixes, the
// cross-shard rename rejection, a same-shard rename, and the final
// listing — so anything a failover changed about what any shard's client
// sees would change these bytes.
func shardFailoverWorkload(t *testing.T, s *Session, buf *bytes.Buffer) error {
	shards := s.Shards()
	files := make([]string, shards)
	for g := 0; g < shards; g++ {
		files[g] = shardName(t, s, g, 0)
		if err := s.Create(files[g]); err != nil {
			return fmt.Errorf("create %s: %w", files[g], err)
		}
		fmt.Fprintf(buf, "create %s shard %d\n", files[g], g)
	}
	const n = 40
	for i := 0; i < n; i++ {
		// Round-robin across shards so every group has traffic in flight
		// when its leader dies.
		g := i % shards
		if err := s.Append(files[g], robustPayload(i)); err != nil {
			return fmt.Errorf("append %d to %s: %w", i, files[g], err)
		}
		fmt.Fprintf(buf, "append %d %s ok\n", i, files[g])
		if i%10 == 9 {
			for g := 0; g < shards; g++ {
				info, err := s.Stat(files[g])
				if err != nil {
					return fmt.Errorf("stat %s at %d: %w", files[g], i, err)
				}
				fmt.Fprintf(buf, "stat %s %d blocks\n", files[g], info.Blocks)
			}
		}
	}
	for g := 0; g < shards; g++ {
		blocks, err := s.ReadAll(files[g])
		if err != nil {
			return fmt.Errorf("readall %s: %w", files[g], err)
		}
		for i, b := range blocks {
			fmt.Fprintf(buf, "read %s %d %x\n", files[g], i, b[:8])
		}
	}
	// The cross-shard rename rule holds under chaos too: rejected
	// client-side, no shard touched.
	cross := shardName(t, s, (s.ShardOf(files[0])+1)%shards, 1)
	if _, err := s.Rename(files[0], cross); !errors.Is(err, ErrCrossShard) {
		return fmt.Errorf("cross-shard rename = %v, want ErrCrossShard", err)
	}
	fmt.Fprintf(buf, "rename %s %s cross-shard rejected\n", files[0], cross)
	same := shardName(t, s, s.ShardOf(files[0]), 1)
	if _, err := s.Rename(files[0], same); err != nil {
		return fmt.Errorf("same-shard rename: %w", err)
	}
	fmt.Fprintf(buf, "rename %s %s ok\n", files[0], same)
	names, err := s.Client().List()
	if err != nil {
		return fmt.Errorf("list: %w", err)
	}
	fmt.Fprintf(buf, "list %v\n", names)
	return nil
}

// TestShardedFailoverChaosByteIdenticalTrace is the acceptance gate for
// the sharded directory: the same seeded workload runs crash-free and
// then under a schedule that kills each shard group's leader in turn
// (revived later), and the client-observed byte traces must be identical
// — a failover may cost time on its own shard, never correctness, and
// never anything at all on the other shards. Both runs end with a clean
// fsck of every volume. With BRIDGE_SHARD_TRACE_OUT set, the chaos trace
// is dumped to <path>.seed<seed> so CI can prove byte-identity across
// processes too.
func TestShardedFailoverChaosByteIdenticalTrace(t *testing.T) {
	seed := failoverSeed(t)
	run := func(inj *FaultInjector, dir string) (*bytes.Buffer, error) {
		cfg := Config{
			Nodes: 4, DiskBlocks: 512, Servers: 2, Replicas: 3,
			Journal: 64, DataDir: dir, Fault: inj,
		}
		sys, err := New(cfg)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		err = sys.Run(func(s *Session) error {
			if err := shardFailoverWorkload(t, s, &buf); err != nil {
				return err
			}
			for i := 0; i < s.Nodes(); i++ {
				ck, err := s.Fsck(i)
				if err != nil {
					return fmt.Errorf("fsck %d: %w", i, err)
				}
				if len(ck.Problems) != 0 {
					return fmt.Errorf("fsck %d: problems %v", i, ck.Problems)
				}
				fmt.Fprintf(&buf, "fsck %d clean\n", i)
			}
			return nil
		})
		return &buf, err
	}

	want, err := run(nil, t.TempDir())
	if err != nil {
		t.Fatalf("crash-free run: %v", err)
	}

	inj := NewFaultInjector(seed)
	inj.ServerSchedule(
		fault.ServerEvent{At: 400 * time.Millisecond, Shard: 0, Server: -1, Kind: fault.Kill},
		fault.ServerEvent{At: 1400 * time.Millisecond, Shard: 0, Server: -1, Kind: fault.Restart},
		fault.ServerEvent{At: 2200 * time.Millisecond, Shard: 1, Server: -1, Kind: fault.Kill},
		fault.ServerEvent{At: 3200 * time.Millisecond, Shard: 1, Server: -1, Kind: fault.Restart},
	)
	got, err := run(inj, t.TempDir())
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	if kills := chaosStat(inj, "fault.server_kills"); kills != 2 {
		t.Errorf("server kills executed = %d, want 2", kills)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Errorf("client-observed trace diverged under sharded leader-kill chaos:\n%s",
			firstDiff(want.String(), got.String()))
	}
	if out := os.Getenv("BRIDGE_SHARD_TRACE_OUT"); out != "" {
		path := fmt.Sprintf("%s.seed%d", out, seed)
		if err := os.WriteFile(path, got.Bytes(), 0o644); err != nil {
			t.Fatalf("dump trace: %v", err)
		}
		t.Logf("sharded chaos trace dumped to %s", path)
	}
}

// TestShardedFailoverOtherShardsUnstalled pins the isolation property at
// the facade: while shard 0's group is mid-election after a leader kill,
// appends owned by shard 1 proceed at the no-fault pace — bounded far
// below the election window — because per-shard leader guesses keep the
// dead group out of their path.
func TestShardedFailoverOtherShardsUnstalled(t *testing.T) {
	// Near-zero disk latency: the bound below measures the metadata
	// path, not the storage devices, so a hidden consensus stall cannot
	// hide inside disk time.
	sys, err := New(Config{Nodes: 4, DiskBlocks: 512, Servers: 2, Replicas: 3, DiskLatency: time.Microsecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	err = sys.Run(func(s *Session) error {
		f0, f1 := shardName(t, s, 0, 0), shardName(t, s, 1, 0)
		for _, name := range []string{f0, f1} {
			if err := s.Create(name); err != nil {
				return err
			}
			if err := s.Append(name, robustPayload(0)); err != nil {
				return err
			}
		}
		lead := s.LeaderServer(0)
		if lead < 0 {
			return errors.New("no shard-0 leader after a served workload")
		}
		if err := s.CrashServer(0, lead); err != nil {
			return err
		}
		start := s.Now()
		const quiet = 16
		for i := 0; i < quiet; i++ {
			if err := s.Append(f1, robustPayload(1+i)); err != nil {
				return fmt.Errorf("shard-1 append %d during shard-0 failover: %w", i, err)
			}
		}
		if took := s.Now() - start; took > 500*time.Millisecond {
			return fmt.Errorf("shard-1 appends took %v during shard-0 failover; want well under the election window", took)
		}
		// The victim shard heals behind redirects.
		if err := s.Append(f0, robustPayload(99)); err != nil {
			return fmt.Errorf("shard-0 append after failover: %w", err)
		}
		if s.LeaderServer(0) == lead {
			return fmt.Errorf("shard-0 leader %d still leading after crash", lead)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}
