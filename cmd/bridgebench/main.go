// Command bridgebench regenerates every table and figure of the Bridge
// paper's evaluation, plus the ablations, printing the paper's published
// numbers alongside for shape comparison.
//
// Usage:
//
//	bridgebench [-exp all|table2|table3|table4|placement|createtree|popen|methods|faults|obs|latency]
//	            [-records N] [-incore N] [-ps 2,4,8,16,32] [-quick] [-trace out.json]
//
// The default is the paper's full configuration: a 10 MB file of 10240
// one-block records, 15 ms Wren-class disks, p in {2,4,8,16,32}. -quick
// runs a reduced scale that preserves every shape in seconds.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"bridge/internal/experiments"
	"bridge/internal/model"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bridgebench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp      = flag.String("exp", "all", "experiment: all, table2, table3, table4, placement, createtree, popen, methods, disordered, servers, utilization, model, faults, scrub, corruption, obs, latency")
		records  = flag.Int("records", 0, "records per workload file (0 = paper's 10240)")
		inCore   = flag.Int("incore", 0, "sort tool in-core buffer in records (0 = paper's 512)")
		psFlag   = flag.String("ps", "", "comma-separated processor sweep (default 2,4,8,16,32)")
		quick    = flag.Bool("quick", false, "reduced scale (shape-preserving, runs in seconds)")
		traceOut = flag.String("trace", "", "write an observed batched-read run's Chrome trace JSON here")
	)
	flag.Parse()

	cfg := experiments.PaperScale()
	if *quick {
		cfg = experiments.QuickScale()
	}
	if *records > 0 {
		cfg.Records = *records
	}
	if *inCore > 0 {
		cfg.InCore = *inCore
	}
	if *psFlag != "" {
		cfg.Ps = nil
		for _, s := range strings.Split(*psFlag, ",") {
			p, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return fmt.Errorf("bad -ps value %q: %w", s, err)
			}
			cfg.Ps = append(cfg.Ps, p)
		}
	}

	w := os.Stdout
	section := func(name string) func() {
		fmt.Fprintf(w, "\n================ %s ================\n", name)
		start := time.Now()
		return func() { fmt.Fprintf(w, "[host time: %v]\n", time.Since(start).Round(time.Millisecond)) }
	}
	want := func(name string) bool { return *exp == "all" || *exp == name }

	fmt.Fprintf(w, "Bridge reproduction benchmark harness\n")
	fmt.Fprintf(w, "workload: %d records of %d bytes; disks: %v fixed latency; p sweep: %v; sort in-core: %d\n",
		cfg.Records, cfg.PayloadBytes, cfg.DiskLatency, cfg.Ps, cfg.InCore)

	if want("table2") {
		done := section("Table 2: basic operations")
		res, err := experiments.Table2(cfg)
		if err != nil {
			return err
		}
		res.Render(w)
		done()
	}
	if want("table3") {
		done := section("Table 3: copy tool")
		rows, err := experiments.Table3Copy(cfg)
		if err != nil {
			return err
		}
		experiments.RenderCopy(w, rows, cfg.Records)
		done()
	}
	if want("table4") {
		done := section("Table 4: merge sort tool")
		rows, err := experiments.Table4Sort(cfg)
		if err != nil {
			return err
		}
		experiments.RenderSort(w, rows, cfg.Records)
		done()
	}
	if want("placement") {
		done := section("Ablation A1: placement strategies")
		rows, reorg, err := experiments.Placement(cfg)
		if err != nil {
			return err
		}
		experiments.RenderPlacement(w, rows, reorg)
		done()
	}
	if want("createtree") {
		done := section("Ablation A2: Create initiation")
		rows, err := experiments.CreateTree(cfg)
		if err != nil {
			return err
		}
		experiments.RenderCreateTree(w, rows)
		done()
	}
	if want("popen") {
		done := section("Ablation A3: parallel-open width")
		rows, err := experiments.ParallelOpen(cfg, 8, []int{1, 2, 4, 8, 16, 32})
		if err != nil {
			return err
		}
		experiments.RenderParallelOpen(w, rows, 8, cfg.Records)
		done()
	}
	if want("methods") {
		done := section("Ablation A4a: access methods")
		rows, err := experiments.ToolVsNaive(cfg, 8)
		if err != nil {
			return err
		}
		experiments.RenderAccessMethods(w, rows, cfg.Records)
		done()
	}
	if want("disordered") {
		done := section("Ablation A5: disordered files")
		res, err := experiments.Disordered(cfg, 8)
		if err != nil {
			return err
		}
		experiments.RenderDisordered(w, res)
		done()
	}
	if want("servers") {
		done := section("Ablation A6: distributed Bridge Servers")
		rows, err := experiments.ServerScaling(cfg, 8, 8)
		if err != nil {
			return err
		}
		experiments.RenderServerScaling(w, rows, 8)
		done()
	}
	if want("utilization") {
		done := section("Disk utilization: naive vs tool")
		rows, err := experiments.Utilization(cfg, 8)
		if err != nil {
			return err
		}
		experiments.RenderUtilization(w, rows, 8, cfg.Records)
		done()
	}
	if want("model") {
		done := section("Analytical model vs simulation")
		rows, err := experiments.ModelComparison(cfg)
		if err != nil {
			return err
		}
		m := model.Default()
		m.InCore = cfg.InCore
		experiments.RenderModel(w, rows, m.MergeSaturationWidth())
		done()
	}
	if want("faults") {
		done := section("Ablation A4b: faults, mirroring, parity")
		rep, err := experiments.Faults(cfg, 4)
		if err != nil {
			return err
		}
		experiments.RenderFaults(w, rep)
		done()
	}
	// The integrity experiments sweep p ∈ {2, 4, 8}: the recovery pipeline's
	// shape is established well before the full paper sweep.
	icfg := cfg
	if *psFlag == "" {
		icfg.Ps = []int{2, 4, 8}
	}
	if want("scrub") {
		done := section("Integrity: scrub overhead on the batched naive read")
		pts, err := experiments.ScrubOverhead(icfg)
		if err != nil {
			return err
		}
		experiments.RenderScrubOverhead(w, pts, icfg.Records)
		done()
	}
	if want("corruption") {
		done := section("Integrity: silent-corruption recovery")
		pts, err := experiments.CorruptionRecovery(icfg)
		if err != nil {
			return err
		}
		experiments.RenderCorruption(w, pts)
		done()
	}
	if want("obs") {
		done := section("Observability: recorder overhead on the batched naive read")
		pts, err := experiments.ObsOverhead(icfg)
		if err != nil {
			return err
		}
		experiments.RenderObsOverhead(w, pts, icfg.Records)
		done()
	}
	if want("latency") {
		done := section("Observability: per-layer latency breakdown")
		lcfg := cfg
		lcfg.Ps = []int{8}
		if *psFlag != "" {
			lcfg.Ps = cfg.Ps[:1]
		}
		rows, err := experiments.LatencyBreakdown(lcfg)
		if err != nil {
			return err
		}
		experiments.RenderLatencyBreakdown(w, rows, lcfg.Ps[0], lcfg.Records)
		done()
	}
	if *traceOut != "" {
		p := 8
		if *psFlag != "" {
			p = cfg.Ps[0]
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		if err := experiments.WriteObsTrace(cfg, p, f); err != nil {
			f.Close()
			return fmt.Errorf("trace: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote Chrome trace (batched read, p=%d) to %s — load in about://tracing or Perfetto\n", p, *traceOut)
	}
	return nil
}
