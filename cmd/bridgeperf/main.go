// Command bridgeperf is the CI perf-regression gate: it runs the
// quick-scale naive-read and copy experiments under the deterministic
// virtual clock, writes their simulated-time metrics as JSON, and fails
// if the batched read path loses its headline speedup or if any metric
// regresses against a committed baseline.
//
// Usage:
//
//	bridgeperf [-out BENCH_pr10.json] [-check BENCH_pr10.json] [-tolerance 0.10] [-trace out.json]
//
// -trace additionally writes the observed batched-read run's Chrome
// trace_event JSON (load in about://tracing or Perfetto).
//
// Because every metric is simulated time, runs are exactly reproducible:
// the committed baseline only changes when the code's performance does.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"bridge/internal/experiments"
)

// Report is the BENCH_pr10.json schema. All *SimMs fields are simulated
// milliseconds (lower is better); RecPerSec is simulated throughput
// (higher is better).
type Report struct {
	PR    int    `json:"pr"`
	Scale string `json:"scale"`
	P     int    `json:"p"`

	NaiveReadBlkSimMs   float64 `json:"naive_read_blk_sim_ms"`
	BatchedReadBlkSimMs float64 `json:"batched_read_blk_sim_ms"`
	BatchedReadSpeedup  float64 `json:"batched_read_speedup"`

	CopyToolSimMs  float64 `json:"copy_tool_sim_ms"`
	CopyRecPerSec  float64 `json:"copy_rec_per_sec"`
	WriteBlkSimMs  float64 `json:"write_blk_sim_ms"`
	CreateSimMs    float64 `json:"create_sim_ms"`
	DeleteTotSimMs float64 `json:"delete_total_sim_ms"`

	// Integrity costs: the same batched read with every node's idle-time
	// scrubber running, and the fraction it adds over the plain run.
	BatchedReadScrubBlkSimMs float64 `json:"batched_read_scrub_blk_sim_ms"`
	ScrubOverheadFrac        float64 `json:"scrub_overhead_frac"`

	// Observability costs: the same batched read with the span recorder
	// attached to the network and every disk, and the fraction it adds.
	// Spans charge no simulated time, so this must stay ~0.
	BatchedReadObsBlkSimMs float64 `json:"batched_read_obs_blk_sim_ms"`
	ObsOverheadFrac        float64 `json:"obs_overhead_frac"`

	// Durability costs: the batched append path on plain volumes and on
	// volumes with the write-ahead intent journal, and the fraction the
	// journal adds. Group commit plus write-back buffering is expected to
	// keep this at or below zero; the gate allows at most 5%.
	BatchedWriteBlkSimMs    float64 `json:"batched_write_blk_sim_ms"`
	BatchedWriteJnlBlkSimMs float64 `json:"batched_write_jnl_blk_sim_ms"`
	JournalOverheadFrac     float64 `json:"journal_overhead_frac"`

	// Write-path campaign: sequential appends through the write-behind
	// group-commit cache versus synchronous per-block appends, the
	// tool-mode parallel delete versus the server's serial chain walk,
	// and Reed–Solomon RS(6,2) append cost and storage overhead versus
	// the 2x mirror.
	WBWriteBlkSimMs      float64 `json:"wb_write_blk_sim_ms"`
	WBWriteSpeedup       float64 `json:"wb_write_speedup"`
	PDeleteTotSimMs      float64 `json:"pdelete_total_sim_ms"`
	PDeleteSpeedup       float64 `json:"pdelete_speedup"`
	MirrorAppendBlkSimMs float64 `json:"mirror_append_blk_sim_ms"`
	RSAppendBlkSimMs     float64 `json:"rs_append_blk_sim_ms"`
	RSStorageOverhead    float64 `json:"rs_storage_overhead"`

	// Metadata HA: a replicated-mode leader-served Open, and the
	// client-observed outage from a leader kill-9 to the first successful
	// post-election Open (dead-leader timeout + election + takeover).
	ReplicatedOpenSimMs float64 `json:"replicated_open_sim_ms"`
	FailoverSimMs       float64 `json:"failover_sim_ms"`

	// Directory sharding: aggregate create/stat/stat/delete throughput
	// under concurrent clients at 1 versus 4 shard groups (Replicas=3
	// each, zero-latency disks so only the metadata path is measured),
	// and the scaling ratio between them.
	MetaOps1ShardPerSec float64 `json:"meta_ops_1shard_per_sec"`
	MetaOps4ShardPerSec float64 `json:"meta_ops_4shard_per_sec"`
	ShardScaling        float64 `json:"shard_scaling"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bridgeperf:", err)
		os.Exit(1)
	}
}

func simMs(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func run() error {
	var (
		out       = flag.String("out", "BENCH_pr10.json", "where to write the metrics report")
		check     = flag.String("check", "", "baseline report to compare against (empty = no comparison)")
		tolerance = flag.Float64("tolerance", 0.10, "allowed fractional regression per metric")
		traceOut  = flag.String("trace", "", "write the observed batched-read run's Chrome trace JSON here")
	)
	flag.Parse()

	const p = 8
	cfg := experiments.QuickScale()
	cfg.Ps = []int{p}

	t2, err := experiments.Table2(cfg)
	if err != nil {
		return fmt.Errorf("table2: %w", err)
	}
	pt := t2.Points[0]
	copyRows, err := experiments.Table3Copy(cfg)
	if err != nil {
		return fmt.Errorf("table3: %w", err)
	}
	cp := copyRows[0]
	scrub, err := experiments.ScrubOverhead(cfg)
	if err != nil {
		return fmt.Errorf("scrub overhead: %w", err)
	}
	so := scrub[0]
	obsPts, err := experiments.ObsOverhead(cfg)
	if err != nil {
		return fmt.Errorf("obs overhead: %w", err)
	}
	oo := obsPts[0]
	jnlPts, err := experiments.JournalOverhead(cfg)
	if err != nil {
		return fmt.Errorf("journal overhead: %w", err)
	}
	jo := jnlPts[0]
	wcPts, err := experiments.WriteCampaign(cfg)
	if err != nil {
		return fmt.Errorf("write campaign: %w", err)
	}
	wc := wcPts[0]
	foPts, err := experiments.Failover(cfg)
	if err != nil {
		return fmt.Errorf("failover: %w", err)
	}
	fo := foPts[0]
	msRows, err := experiments.MetadataScaling(cfg, p, 8, 24, []int{1, 4})
	if err != nil {
		return fmt.Errorf("metadata scaling: %w", err)
	}

	rep := Report{
		PR:                  10,
		Scale:               "quick",
		P:                   p,
		NaiveReadBlkSimMs:   simMs(pt.ReadPerBlock),
		BatchedReadBlkSimMs: simMs(pt.ReadBatchPerBlock),
		CopyToolSimMs:       simMs(cp.Time),
		CopyRecPerSec:       cp.RecPerSec,
		WriteBlkSimMs:       simMs(pt.WritePerBlock),
		CreateSimMs:         simMs(pt.CreateTime),
		DeleteTotSimMs:      simMs(pt.DeleteTotal),

		BatchedReadScrubBlkSimMs: simMs(so.Scrubbed),
		ScrubOverheadFrac:        so.Overhead(),

		BatchedReadObsBlkSimMs: simMs(oo.Observed),
		ObsOverheadFrac:        oo.Overhead(),

		BatchedWriteBlkSimMs:    simMs(jo.Plain),
		BatchedWriteJnlBlkSimMs: simMs(jo.Journaled),
		JournalOverheadFrac:     jo.Overhead(),

		WBWriteBlkSimMs:      simMs(wc.WBWritePerBlock),
		WBWriteSpeedup:       wc.WriteSpeedup(),
		PDeleteTotSimMs:      simMs(wc.ParallelDeleteTotal),
		PDeleteSpeedup:       wc.DeleteSpeedup(),
		MirrorAppendBlkSimMs: simMs(wc.MirrorAppendPerBlock),
		RSAppendBlkSimMs:     simMs(wc.RSAppendPerBlock),
		RSStorageOverhead:    wc.RSOverhead,

		ReplicatedOpenSimMs: simMs(fo.SteadyOpen),
		FailoverSimMs:       simMs(fo.FailoverTime),

		MetaOps1ShardPerSec: msRows[0].OpsPerSec,
		MetaOps4ShardPerSec: msRows[1].OpsPerSec,
	}
	if rep.BatchedReadBlkSimMs > 0 {
		rep.BatchedReadSpeedup = rep.NaiveReadBlkSimMs / rep.BatchedReadBlkSimMs
	}
	if rep.MetaOps1ShardPerSec > 0 {
		rep.ShardScaling = rep.MetaOps4ShardPerSec / rep.MetaOps1ShardPerSec
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("naive read  %8.3f ms/blk\nbatched read%8.3f ms/blk (%.1fx)\nwith scrub  %8.3f ms/blk (+%.1f%%)\nwith obs    %8.3f ms/blk (+%.1f%%)\nbatched write%7.3f ms/blk\nwith journal%8.3f ms/blk (%+.1f%%)\ncopy tool   %8.0f ms (%.0f rec/s)\nwb write    %8.3f ms/blk (%.1fx)\npar. delete %8.0f ms (%.1fx)\nRS(6,2) app %8.3f ms/blk (%.3fx storage; mirror %.3f ms/blk at 2x)\nrepl. open  %8.3f ms\nfailover    %8.0f ms outage\nmeta ops/s  %8.0f at 1 shard, %.0f at 4 shards (%.1fx)\nwrote %s\n",
		rep.NaiveReadBlkSimMs, rep.BatchedReadBlkSimMs, rep.BatchedReadSpeedup,
		rep.BatchedReadScrubBlkSimMs, 100*rep.ScrubOverheadFrac,
		rep.BatchedReadObsBlkSimMs, 100*rep.ObsOverheadFrac,
		rep.BatchedWriteBlkSimMs, rep.BatchedWriteJnlBlkSimMs, 100*rep.JournalOverheadFrac,
		rep.CopyToolSimMs, rep.CopyRecPerSec,
		rep.WBWriteBlkSimMs, rep.WBWriteSpeedup,
		rep.PDeleteTotSimMs, rep.PDeleteSpeedup,
		rep.RSAppendBlkSimMs, rep.RSStorageOverhead, rep.MirrorAppendBlkSimMs,
		rep.ReplicatedOpenSimMs, rep.FailoverSimMs,
		rep.MetaOps1ShardPerSec, rep.MetaOps4ShardPerSec, rep.ShardScaling, *out)

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		if err := experiments.WriteObsTrace(cfg, p, f); err != nil {
			f.Close()
			return fmt.Errorf("trace: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote Chrome trace to %s\n", *traceOut)
	}

	// Headline gate: the batched naive read must stay >= 3x cheaper per
	// block than the per-block naive read at p=8.
	if rep.BatchedReadSpeedup < 3.0 {
		return fmt.Errorf("batched read speedup %.2fx fell below the required 3x", rep.BatchedReadSpeedup)
	}
	// Integrity gate: checksums + the idle-time scrubber may cost at most
	// 5% on the batched naive read path at p=8.
	if rep.ScrubOverheadFrac > 0.05 {
		return fmt.Errorf("scrub overhead %.1f%% on the batched read exceeds the 5%% budget", 100*rep.ScrubOverheadFrac)
	}
	// Observability gate: the span recorder may cost at most 2% on the
	// batched read path. Spans charge no simulated time, so in practice
	// this is exactly 0%; the gate catches anyone adding a Sleep.
	if rep.ObsOverheadFrac > 0.02 {
		return fmt.Errorf("observability overhead %.1f%% on the batched read exceeds the 2%% budget", 100*rep.ObsOverheadFrac)
	}
	// Durability gate: the write-ahead intent journal may cost at most 5%
	// on the batched write path at p=8. Group commit plus write-back
	// buffering should keep it at or below zero.
	if rep.JournalOverheadFrac > 0.05 {
		return fmt.Errorf("journaling overhead %.1f%% on the batched write exceeds the 5%% budget", 100*rep.JournalOverheadFrac)
	}
	// Write-behind gate: group commit must make sequential appends at
	// least 5x cheaper per block than the synchronous path at p=8.
	if rep.WBWriteSpeedup < 5.0 {
		return fmt.Errorf("write-behind speedup %.2fx fell below the required 5x", rep.WBWriteSpeedup)
	}
	// Parallel-delete gate: the tool-mode delete must beat the server's
	// serial chain walk by at least 4x at p=8.
	if rep.PDeleteSpeedup < 4.0 {
		return fmt.Errorf("parallel delete speedup %.2fx fell below the required 4x", rep.PDeleteSpeedup)
	}
	// Erasure-coding gate: RS(6,2)'s measured storage overhead must stay
	// ~1.33x ((6+2)/6 plus partial-stripe rounding), far below Mirror's 2x.
	if rep.RSStorageOverhead < 1.30 || rep.RSStorageOverhead > 1.40 {
		return fmt.Errorf("RS(6,2) storage overhead %.3fx out of the ~1.33x band", rep.RSStorageOverhead)
	}
	// Failover gate: the client-observed outage from a leader kill-9 to
	// the first successful post-election Open must stay under 3 simulated
	// seconds — one dead-leader detection timeout (1s) plus an election
	// (≤0.3s) plus the takeover's bounded effect replay, with slack. A
	// blown budget means failure detection, the election, or takeover
	// replay got slower.
	if rep.FailoverSimMs > 3000 {
		return fmt.Errorf("failover outage %.0f ms exceeds the 3000 ms budget", rep.FailoverSimMs)
	}
	// Sharding gate: four shard groups must deliver at least 2x the
	// aggregate directory-op throughput of one group under the same
	// concurrent metadata churn — the point of partitioning the
	// namespace. A blown gate means requests are no longer spreading
	// across groups, or a shared stage has become the bottleneck.
	if rep.ShardScaling < 2.0 {
		return fmt.Errorf("shard scaling %.2fx at 4 groups fell below the required 2x", rep.ShardScaling)
	}
	if *check == "" {
		return nil
	}

	baseData, err := os.ReadFile(*check)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base Report
	if err := json.Unmarshal(baseData, &base); err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	// lower-is-better metrics: regression = grew past tolerance.
	lower := []struct {
		name      string
		got, want float64
	}{
		{"naive_read_blk_sim_ms", rep.NaiveReadBlkSimMs, base.NaiveReadBlkSimMs},
		{"batched_read_blk_sim_ms", rep.BatchedReadBlkSimMs, base.BatchedReadBlkSimMs},
		{"copy_tool_sim_ms", rep.CopyToolSimMs, base.CopyToolSimMs},
		{"write_blk_sim_ms", rep.WriteBlkSimMs, base.WriteBlkSimMs},
		{"create_sim_ms", rep.CreateSimMs, base.CreateSimMs},
		{"delete_total_sim_ms", rep.DeleteTotSimMs, base.DeleteTotSimMs},
		{"batched_read_scrub_blk_sim_ms", rep.BatchedReadScrubBlkSimMs, base.BatchedReadScrubBlkSimMs},
		{"batched_read_obs_blk_sim_ms", rep.BatchedReadObsBlkSimMs, base.BatchedReadObsBlkSimMs},
		{"batched_write_blk_sim_ms", rep.BatchedWriteBlkSimMs, base.BatchedWriteBlkSimMs},
		{"batched_write_jnl_blk_sim_ms", rep.BatchedWriteJnlBlkSimMs, base.BatchedWriteJnlBlkSimMs},
		{"wb_write_blk_sim_ms", rep.WBWriteBlkSimMs, base.WBWriteBlkSimMs},
		{"pdelete_total_sim_ms", rep.PDeleteTotSimMs, base.PDeleteTotSimMs},
		{"rs_append_blk_sim_ms", rep.RSAppendBlkSimMs, base.RSAppendBlkSimMs},
		{"replicated_open_sim_ms", rep.ReplicatedOpenSimMs, base.ReplicatedOpenSimMs},
		{"failover_sim_ms", rep.FailoverSimMs, base.FailoverSimMs},
	}
	var failed bool
	for _, m := range lower {
		if m.want > 0 && m.got > m.want*(1+*tolerance) {
			fmt.Fprintf(os.Stderr, "REGRESSION %s: %.3f -> %.3f (+%.1f%%, tolerance %.0f%%)\n",
				m.name, m.want, m.got, 100*(m.got/m.want-1), 100**tolerance)
			failed = true
		}
	}
	if base.CopyRecPerSec > 0 && rep.CopyRecPerSec < base.CopyRecPerSec*(1-*tolerance) {
		fmt.Fprintf(os.Stderr, "REGRESSION copy_rec_per_sec: %.1f -> %.1f\n", base.CopyRecPerSec, rep.CopyRecPerSec)
		failed = true
	}
	// higher-is-better metrics: regression = shrank past tolerance.
	higher := []struct {
		name      string
		got, want float64
	}{
		{"meta_ops_1shard_per_sec", rep.MetaOps1ShardPerSec, base.MetaOps1ShardPerSec},
		{"meta_ops_4shard_per_sec", rep.MetaOps4ShardPerSec, base.MetaOps4ShardPerSec},
	}
	for _, m := range higher {
		if m.want > 0 && m.got < m.want*(1-*tolerance) {
			fmt.Fprintf(os.Stderr, "REGRESSION %s: %.1f -> %.1f (-%.1f%%, tolerance %.0f%%)\n",
				m.name, m.want, m.got, 100*(1-m.got/m.want), 100**tolerance)
			failed = true
		}
	}
	if failed {
		return fmt.Errorf("simulated-time metrics regressed vs %s (regenerate the baseline only with an explanation)", *check)
	}
	fmt.Printf("no regressions vs %s\n", *check)
	return nil
}
