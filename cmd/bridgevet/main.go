// Bridgevet machine-checks the sim determinism contract (see DESIGN.md,
// "Determinism contract & static enforcement"). It runs ten analyzers —
// simdeterminism, maporder, rawgoroutine, lockedblock, errcmp, obsexport,
// spanend, journalorder, protocolshape, syncerr — over Go packages and
// reports every violation.
//
// It speaks three protocols:
//
//   - As a vet tool. cmd/go invokes it once per package with a *.cfg file;
//     this is the supported way to sweep the repository:
//
//     go build -o /tmp/bridgevet ./cmd/bridgevet
//     go vet -vettool=/tmp/bridgevet ./...
//
//   - Standalone, with package patterns. It re-executes the command above
//     on itself, so `bridgevet ./...` from the module root is equivalent:
//
//     go run ./cmd/bridgevet ./...
//
//   - Machine-readable, with -json. It sweeps the module in-process (one
//     loader shares type-checking across packages; one shared fact store
//     shares CFG construction across analyzers) and prints a sorted JSON
//     array of findings, which CI turns into GitHub annotations:
//
//     go run ./cmd/bridgevet -json
//
// Individual findings are suppressed with a directive comment naming one
// analyzer on one line, with a reason:
//
//	t0 := time.Now() //bridgevet:allow simdeterminism — host-side log stamp
//
// Exit status is nonzero if any diagnostic is reported.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"bridge/internal/analysis/suite"
)

// selfID hashes this binary; "gopher" is the unitchecker-compatible
// fallback when the executable cannot be read.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "gopher"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "gopher"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "gopher"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}

func main() {
	progname := filepath.Base(os.Args[0])
	var (
		printVersion = flag.String("V", "", "print version and exit (cmd/go protocol)")
		printFlags   = flag.Bool("flags", false, "print analyzer flags in JSON (cmd/go protocol)")
		listChecks   = flag.Bool("list", false, "list the analyzers and exit")
		jsonOut      = flag.Bool("json", false, "sweep the module in-process and print findings as JSON")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [packages] | %s <vet-config>.cfg\n\nAnalyzers:\n", progname, progname)
		for _, a := range suite.All() {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Summary())
		}
	}
	flag.Parse()

	switch {
	case *printVersion != "":
		// cmd/go runs `bridgevet -V=full` and uses the trailing buildid as
		// the tool's cache key; hashing our own binary makes vet results
		// invalidate whenever the analyzers change.
		fmt.Printf("%s version devel buildID=%s\n", progname, selfID())
		return
	case *printFlags:
		// cmd/go queries `-flags` to learn which vet flags the tool
		// accepts; bridgevet always runs its full suite.
		fmt.Println("[]")
		return
	case *listChecks:
		for _, a := range suite.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Summary())
		}
		return
	case *jsonOut:
		os.Exit(jsonSweep(flag.Args()))
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0]))
	}
	os.Exit(standalone(args))
}

// standalone re-invokes this binary through `go vet -vettool=`, which
// handles package loading, export data, and per-package caching.
func standalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "bridgevet: cannot locate own binary: %v\n", err)
		return 1
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "bridgevet: %v\n", err)
		return 1
	}
	return 0
}
