package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"bridge/internal/analysis"
	"bridge/internal/analysis/suite"
)

// finding is one diagnostic in -json output. File is relative to the
// module root so the output is stable across checkouts; CI rewrites these
// into GitHub annotations.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonSweep loads the module rooted at args[0] (default ".") in-process
// and prints every finding as a JSON array sorted by file, line,
// analyzer, message. One loader serves all packages, so dependency
// type-checking is done once per import rather than once per target; one
// shared fact store per package serves all analyzers, so the CFG suite is
// built once rather than per analyzer. Exit status mirrors the vet
// protocol: 0 clean, 1 broken invocation or unloadable package, 2
// findings.
func jsonSweep(args []string) int {
	dir := "."
	if len(args) > 0 {
		dir = args[0]
	}
	root, _, err := analysis.FindModuleRoot(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bridgevet: %v\n", err)
		return 1
	}
	loader := analysis.NewLoader()
	pkgs, err := loader.LoadModule(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bridgevet: %v\n", err)
		return 1
	}
	broken := false
	var findings []finding
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "bridgevet: %s: %v\n", pkg.Path, terr)
			broken = true
		}
		diags, err := analysis.Check(pkg, suite.All(), nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bridgevet: %v\n", err)
			return 1
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			file := pos.Filename
			if rel, err := filepath.Rel(root, file); err == nil {
				file = filepath.ToSlash(rel)
			}
			findings = append(findings, finding{
				File:     file,
				Line:     pos.Line,
				Col:      pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	if findings == nil {
		findings = []finding{} // print [] rather than null
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(findings); err != nil {
		fmt.Fprintf(os.Stderr, "bridgevet: %v\n", err)
		return 1
	}
	switch {
	case broken:
		return 1
	case len(findings) > 0:
		return 2
	}
	return 0
}
