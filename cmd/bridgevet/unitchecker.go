package main

// Vet-tool protocol: cmd/go invokes the tool as `bridgevet <file>.cfg`,
// once per package unit, with a JSON config describing the unit's files
// and the export data of its dependencies. This mirrors
// golang.org/x/tools/go/analysis/unitchecker on the standard library only.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"bridge/internal/analysis"
	"bridge/internal/analysis/suite"
)

// vetConfig is the subset of cmd/go's vet config bridgevet consumes.
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoVersion   string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string

	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func unitcheck(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bridgevet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "bridgevet: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	// cmd/go requires the facts output file to exist even though
	// bridgevet's analyzers exchange no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("bridgevet: no facts\n"), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "bridgevet: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	src := make(map[string][]byte)
	for _, name := range cfg.GoFiles {
		b, err := os.ReadFile(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bridgevet: %v\n", err)
			return 1
		}
		f, err := parser.ParseFile(fset, name, b, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "bridgevet: %v\n", err)
			return 1
		}
		files = append(files, f)
		src[name] = b
	}

	pkg, info, typeErrs := typecheck(fset, files, &cfg)
	if len(typeErrs) > 0 {
		// Retry from source: export data the gc importer cannot read (or
		// stale build cache) must not take the lint signal down with it.
		if p2, i2, e2 := typecheckFromSource(fset, files, &cfg); len(e2) == 0 {
			pkg, info, typeErrs = p2, i2, nil
		} else if cfg.SucceedOnTypecheckFailure {
			return 0
		} else {
			for _, e := range typeErrs {
				fmt.Fprintf(os.Stderr, "bridgevet: %v\n", e)
			}
			return 1
		}
	}

	apkg := &analysis.Package{
		Path:  strings.TrimSuffix(cfg.ImportPath, ".test"),
		Dir:   cfg.Dir,
		Fset:  fset,
		Files: files,
		Src:   src,
		Types: pkg,
		Info:  info,
	}
	diags, err := analysis.Check(apkg, suite.All(), suite.Names())
	if err != nil {
		fmt.Fprintf(os.Stderr, "bridgevet: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// typecheck resolves imports through the export data cmd/go supplied.
func typecheck(fset *token.FileSet, files []*ast.File, cfg *vetConfig) (*types.Package, *types.Info, []error) {
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if actual, ok := cfg.ImportMap[path]; ok {
			path = actual
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return check(fset, files, cfg, imp)
}

// typecheckFromSource resolves imports by type-checking dependency source,
// using the module tree around cfg.Dir for local packages and GOROOT for
// the standard library.
func typecheckFromSource(fset *token.FileSet, files []*ast.File, cfg *vetConfig) (*types.Package, *types.Info, []error) {
	root, modpath, err := analysis.FindModuleRoot(cfg.Dir)
	if err != nil {
		return nil, nil, []error{err}
	}
	loader := analysis.NewLoaderAt(fset)
	loader.ModuleRoot = root
	loader.ModulePath = modpath
	return check(fset, files, cfg, loader)
}

func check(fset *token.FileSet, files []*ast.File, cfg *vetConfig, imp types.Importer) (*types.Package, *types.Info, []error) {
	var errs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { errs = append(errs, err) },
	}
	if cfg.GoVersion != "" {
		conf.GoVersion = cfg.GoVersion
	}
	info := newInfo()
	pkg, _ := conf.Check(cfg.ImportPath, fset, files, info)
	return pkg, info, errs
}
