package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runQuiet executes a bridgefs invocation, capturing stdout.
func runQuiet(t *testing.T, args ...string) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatalf("pipe: %v", err)
	}
	os.Stdout = w
	runErr := run(args)
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatalf("reading captured stdout: %v", err)
	}
	return buf.String(), runErr
}

func TestCLILifecycle(t *testing.T) {
	dir := t.TempDir()
	state := filepath.Join(dir, "cluster")

	if _, err := runQuiet(t, "-dir", state, "init", "-nodes", "4", "-blocks", "1024"); err != nil {
		t.Fatalf("init: %v", err)
	}
	// Re-init refused.
	if _, err := runQuiet(t, "-dir", state, "init"); err == nil {
		t.Fatal("second init succeeded")
	}

	// Put a host file.
	content := []byte(strings.Repeat("bridge carries interleaved blocks\n", 80))
	local := filepath.Join(dir, "in.txt")
	if err := os.WriteFile(local, content, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runQuiet(t, "-dir", state, "put", local, "doc")
	if err != nil {
		t.Fatalf("put: %v", err)
	}
	if !strings.Contains(out, "stored") {
		t.Errorf("put output: %q", out)
	}

	// List shows it (persistence across invocations).
	out, err = runQuiet(t, "-dir", state, "ls")
	if err != nil || !strings.Contains(out, "doc") {
		t.Fatalf("ls: %q, %v", out, err)
	}

	// Copy with the tool; grep the copy.
	if _, err := runQuiet(t, "-dir", state, "cp", "doc", "doc2"); err != nil {
		t.Fatalf("cp: %v", err)
	}
	out, err = runQuiet(t, "-dir", state, "grep", "doc2", "interleaved")
	if err != nil {
		t.Fatalf("grep: %v", err)
	}
	if !strings.Contains(out, "matches") {
		t.Errorf("grep output: %q", out)
	}

	// wc totals.
	out, err = runQuiet(t, "-dir", state, "wc", "doc")
	if err != nil || !strings.Contains(out, "80 lines") {
		t.Fatalf("wc: %q, %v", out, err)
	}

	// Round trip.
	back := filepath.Join(dir, "out.txt")
	if _, err := runQuiet(t, "-dir", state, "get", "doc2", back); err != nil {
		t.Fatalf("get: %v", err)
	}
	got, err := os.ReadFile(back)
	if err != nil || !bytes.Equal(got, content) {
		t.Fatalf("round trip differs (%d vs %d bytes), %v", len(got), len(content), err)
	}

	// fsck clean.
	out, err = runQuiet(t, "-dir", state, "fsck")
	if err != nil {
		t.Fatalf("fsck: %v (%q)", err, out)
	}
	if !strings.Contains(out, "clean") {
		t.Errorf("fsck output: %q", out)
	}

	// Sort.
	if _, err := runQuiet(t, "-dir", state, "sort", "doc", "doc.sorted"); err != nil {
		t.Fatalf("sort: %v", err)
	}

	// Delete and confirm.
	if _, err := runQuiet(t, "-dir", state, "rm", "doc"); err != nil {
		t.Fatalf("rm: %v", err)
	}
	out, _ = runQuiet(t, "-dir", state, "ls")
	if strings.Contains(out, "doc\n") {
		t.Errorf("doc still listed after rm: %q", out)
	}

	// info works.
	out, err = runQuiet(t, "-dir", state, "info")
	if err != nil || !strings.Contains(out, "4 storage nodes") {
		t.Fatalf("info: %q, %v", out, err)
	}
}

func TestCLIErrors(t *testing.T) {
	dir := t.TempDir()
	state := filepath.Join(dir, "cluster")
	if _, err := runQuiet(t, "-dir", state, "ls"); err == nil {
		t.Error("ls without init succeeded")
	}
	if _, err := runQuiet(t, "ls"); err == nil {
		t.Error("missing -dir accepted")
	}
	if _, err := runQuiet(t, "-dir", state); err == nil {
		t.Error("missing subcommand accepted")
	}
	runQuiet(t, "-dir", state, "init", "-nodes", "2", "-blocks", "512")
	if _, err := runQuiet(t, "-dir", state, "bogus"); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if _, err := runQuiet(t, "-dir", state, "get", "ghost", "/tmp/x"); err == nil {
		t.Error("get of missing file succeeded")
	}
	if _, err := runQuiet(t, "-dir", state, "put"); err == nil {
		t.Error("put without args accepted")
	}
}

func TestCLIEmptyFile(t *testing.T) {
	dir := t.TempDir()
	state := filepath.Join(dir, "cluster")
	runQuiet(t, "-dir", state, "init", "-nodes", "2", "-blocks", "512")
	local := filepath.Join(dir, "empty")
	os.WriteFile(local, nil, 0o644)
	if _, err := runQuiet(t, "-dir", state, "put", local, "empty"); err != nil {
		t.Fatalf("put empty: %v", err)
	}
	back := filepath.Join(dir, "empty.out")
	if _, err := runQuiet(t, "-dir", state, "get", "empty", back); err != nil {
		t.Fatalf("get empty: %v", err)
	}
	got, err := os.ReadFile(back)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty round trip = %d bytes, %v", len(got), err)
	}
}
