// Command bridgefs is a usable command-line interface to a persistent
// simulated Bridge cluster. The cluster's disks live as image files in a
// state directory; every invocation boots the cluster, mounts the volumes,
// performs one operation, syncs, and saves the images back — so files
// survive across invocations.
//
// Usage:
//
//	bridgefs -dir STATE init [-nodes 8] [-blocks 8192]
//	bridgefs -dir STATE put LOCAL NAME      store a host file
//	bridgefs -dir STATE get NAME LOCAL      retrieve to a host file
//	bridgefs -dir STATE cat NAME            write contents to stdout
//	bridgefs -dir STATE ls                  list files
//	bridgefs -dir STATE rm NAME             delete
//	bridgefs -dir STATE cp SRC DST          parallel copy tool
//	bridgefs -dir STATE sort SRC DST        parallel merge sort tool
//	bridgefs -dir STATE grep NAME PATTERN   parallel search tool
//	bridgefs -dir STATE wc NAME             parallel summary tool
//	bridgefs -dir STATE fsck [-repair]      per-volume consistency check
//	bridgefs -dir STATE info                cluster structure
//
// Every operation reports the simulated time it took on the modeled
// hardware (15 ms Wren-class disks, Butterfly-class messaging).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"bridge/internal/core"
	"bridge/internal/disk"
	"bridge/internal/efs"
	"bridge/internal/lfs"
	"bridge/internal/sim"
	"bridge/internal/tools"
)

type manifest struct {
	Nodes      int
	DiskBlocks int
	Dir        core.DirSnapshot
}

// errStaleImage reports a leftover .tmp disk image: an earlier save was
// interrupted between writing the temp file and renaming it over the
// committed image. The committed image is intact; the temp file is trash.
var errStaleImage = errors.New("stale temporary disk image (an earlier save was interrupted)")

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bridgefs:", err)
		os.Exit(1)
	}
}

func run(argv []string) error {
	fs := flag.NewFlagSet("bridgefs", flag.ContinueOnError)
	dir := fs.String("dir", "", "cluster state directory (required)")
	if err := fs.Parse(argv); err != nil {
		return err
	}
	args := fs.Args()
	if *dir == "" || len(args) == 0 {
		fs.Usage()
		return errors.New("need -dir and a subcommand")
	}
	cmd, rest := args[0], args[1:]

	if cmd == "init" {
		return initCluster(*dir, rest)
	}
	m, disks, err := load(*dir)
	if err != nil {
		return err
	}
	op, err := makeOp(cmd, rest)
	if err != nil {
		return err
	}
	return withCluster(*dir, m, disks, op)
}

func initCluster(dir string, args []string) error {
	fs := flag.NewFlagSet("init", flag.ContinueOnError)
	nodes := fs.Int("nodes", 8, "storage nodes")
	blocks := fs.Int("blocks", 8192, "blocks per node disk (1 KB each)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err == nil {
		return fmt.Errorf("%s already contains a cluster", dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	m := &manifest{Nodes: *nodes, DiskBlocks: *blocks}
	// Boot once with fresh disks so the volumes get formatted.
	err := withCluster(dir, m, nil, func(proc sim.Proc, cl *core.Cluster, c *core.Client) error {
		fmt.Printf("initialized %d-node Bridge cluster (%d KB per disk) in %s\n", *nodes, *blocks, dir)
		return nil
	})
	return err
}

func load(dir string) (*manifest, []*disk.Disk, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, nil, fmt.Errorf("no cluster in %s (run init first): %w", dir, err)
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, nil, fmt.Errorf("corrupt manifest: %w", err)
	}
	disks := make([]*disk.Disk, m.Nodes)
	for i := range disks {
		d := disk.New(disk.Config{
			NumBlocks: m.DiskBlocks,
			Timing:    disk.FixedTiming{Latency: 15 * time.Millisecond},
		})
		path := filepath.Join(dir, fmt.Sprintf("disk%d.img", i))
		if _, err := os.Stat(path + ".tmp"); err == nil {
			return nil, nil, fmt.Errorf("%w: %s.tmp — the committed %s is intact, remove the temp file to continue",
				errStaleImage, path, filepath.Base(path))
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, fmt.Errorf("opening disk image %d: %w", i, err)
		}
		// Every block is checksum-verified on the way in, so corruption of
		// an image at rest is caught here — naming the node and block —
		// rather than surfacing later as a mystery I/O error.
		err = d.LoadImageVerify(f, efs.ImageVerifier())
		f.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("disk image %d (node %d): %w", i, i, err)
		}
		disks[i] = d
	}
	return &m, disks, nil
}

// withCluster boots the cluster (formatting if disks is nil, mounting
// otherwise), runs op as a client process, syncs, and persists everything.
func withCluster(dir string, m *manifest, disks []*disk.Disk, op opFunc) error {
	rt := sim.NewVirtual()
	cl, err := core.StartCluster(rt, core.ClusterConfig{
		P: m.Nodes,
		Node: lfs.Config{
			DiskBlocks: m.DiskBlocks,
			Timing:     disk.FixedTiming{Latency: 15 * time.Millisecond},
		},
		Disks: disks,
	})
	if err != nil {
		return err
	}
	// Safe before Wait: under the virtual clock no process has run yet.
	cl.Server.Restore(m.Dir)

	var opErr error
	rt.Go("bridgefs", func(proc sim.Proc) {
		defer cl.Stop()
		c := cl.NewClient(proc, 0, "bridgefs-cli")
		defer c.Close()
		start := proc.Now()
		opErr = op(proc, cl, c)
		elapsed := proc.Now() - start
		// Flush LFS metadata so the images are consistent.
		lc := lfs.NewClient(proc, cl.Net, 0, "bridgefs-sync")
		defer lc.C.Close()
		for _, id := range cl.NodeIDs() {
			if err := lc.Sync(id); err != nil && opErr == nil {
				opErr = fmt.Errorf("syncing node %d: %w", id, err)
			}
		}
		fmt.Printf("[simulated time: %v]\n", elapsed.Round(time.Microsecond))
	})
	if err := rt.Wait(); err != nil {
		return err
	}
	if opErr != nil {
		return opErr
	}
	// Persist: directory snapshot + disk images.
	m.Dir = cl.Server.Snapshot()
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), raw, 0o644); err != nil {
		return err
	}
	for i, n := range cl.Nodes {
		path := filepath.Join(dir, fmt.Sprintf("disk%d.img", i))
		if err := saveImageAtomic(n.Disk, path); err != nil {
			return fmt.Errorf("saving disk image %d: %w", i, err)
		}
	}
	return nil
}

// saveImageAtomic persists a disk image crash-safely: the image is written
// to a temp file in the same directory, fsynced, renamed over the old
// image, and the directory is fsynced. A host crash at any point leaves
// either the old image or the new one — never a torn mix — plus at worst
// an orphaned .tmp file, which load reports as errStaleImage.
func saveImageAtomic(d *disk.Disk, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = d.SaveImage(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	df, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	err = df.Sync()
	if cerr := df.Close(); err == nil {
		err = cerr
	}
	return err
}

type opFunc func(proc sim.Proc, cl *core.Cluster, c *core.Client) error

func makeOp(cmd string, args []string) (opFunc, error) {
	need := func(n int, usage string) error {
		if len(args) != n {
			return fmt.Errorf("usage: bridgefs -dir STATE %s", usage)
		}
		return nil
	}
	switch cmd {
	case "put":
		if err := need(2, "put LOCAL NAME"); err != nil {
			return nil, err
		}
		return func(proc sim.Proc, cl *core.Cluster, c *core.Client) error {
			data, err := os.ReadFile(args[0])
			if err != nil {
				return err
			}
			if _, err := c.Create(args[1]); err != nil {
				return err
			}
			blocks := 0
			for off := 0; off < len(data); off += core.PayloadBytes {
				end := off + core.PayloadBytes
				if end > len(data) {
					end = len(data)
				}
				if err := c.SeqWrite(args[1], data[off:end]); err != nil {
					return err
				}
				blocks++
			}
			fmt.Printf("stored %q as %q: %d bytes in %d blocks across %d nodes\n",
				args[0], args[1], len(data), blocks, len(cl.Nodes))
			return nil
		}, nil
	case "get", "cat":
		wantArgs, usage := 2, "get NAME LOCAL"
		if cmd == "cat" {
			wantArgs, usage = 1, "cat NAME"
		}
		if err := need(wantArgs, usage); err != nil {
			return nil, err
		}
		return func(proc sim.Proc, cl *core.Cluster, c *core.Client) error {
			if _, err := c.Open(args[0]); err != nil {
				return err
			}
			var data []byte
			for {
				blk, eof, err := c.SeqRead(args[0])
				if err != nil {
					return err
				}
				if eof {
					break
				}
				data = append(data, blk...)
			}
			if cmd == "cat" {
				_, err := os.Stdout.Write(data)
				return err
			}
			if err := os.WriteFile(args[1], data, 0o644); err != nil {
				return err
			}
			fmt.Printf("retrieved %q to %q: %d bytes\n", args[0], args[1], len(data))
			return nil
		}, nil
	case "ls":
		if err := need(0, "ls"); err != nil {
			return nil, err
		}
		return lsOp, nil
	case "rm":
		if err := need(1, "rm NAME"); err != nil {
			return nil, err
		}
		return func(proc sim.Proc, cl *core.Cluster, c *core.Client) error {
			freed, err := c.Delete(args[0])
			if err != nil {
				return err
			}
			fmt.Printf("deleted %q: %d blocks freed\n", args[0], freed)
			return nil
		}, nil
	case "cp":
		if err := need(2, "cp SRC DST"); err != nil {
			return nil, err
		}
		return func(proc sim.Proc, cl *core.Cluster, c *core.Client) error {
			st, err := tools.Copy(proc, c, args[0], args[1])
			if err != nil {
				return err
			}
			fmt.Printf("copied %q to %q: %d blocks with the parallel copy tool\n", args[0], args[1], st.Blocks)
			return nil
		}, nil
	case "sort":
		if err := need(2, "sort SRC DST"); err != nil {
			return nil, err
		}
		return func(proc sim.Proc, cl *core.Cluster, c *core.Client) error {
			st, err := tools.Sort(proc, c, args[0], args[1], tools.SortOptions{})
			if err != nil {
				return err
			}
			fmt.Printf("sorted %q into %q: %d records (local sort %v, merge %v)\n",
				args[0], args[1], st.Records, st.LocalSort.Round(time.Millisecond), st.Merge.Round(time.Millisecond))
			return nil
		}, nil
	case "grep":
		if err := need(2, "grep NAME PATTERN"); err != nil {
			return nil, err
		}
		return func(proc sim.Proc, cl *core.Cluster, c *core.Client) error {
			res, err := tools.Grep(proc, c, args[0], []byte(args[1]))
			if err != nil {
				return err
			}
			for _, match := range res.Matches {
				fmt.Printf("block %d offset %d\n", match.GlobalBlock, match.Offset)
			}
			fmt.Printf("%d matches in %d blocks\n", len(res.Matches), res.Blocks)
			return nil
		}, nil
	case "wc":
		if err := need(1, "wc NAME"); err != nil {
			return nil, err
		}
		return func(proc sim.Proc, cl *core.Cluster, c *core.Client) error {
			res, err := tools.WC(proc, c, args[0])
			if err != nil {
				return err
			}
			fmt.Printf("%d lines, %d words, %d bytes in %d blocks\n", res.Lines, res.Words, res.Bytes, res.Blocks)
			return nil
		}, nil
	case "fsck":
		repair := len(args) == 1 && args[0] == "-repair"
		if !repair {
			if err := need(0, "fsck [-repair]"); err != nil {
				return nil, err
			}
		}
		return func(proc sim.Proc, cl *core.Cluster, c *core.Client) error {
			lc := lfs.NewClient(proc, cl.Net, 0, "bridgefs-fsck")
			defer lc.C.Close()
			bad := 0
			for i, id := range cl.NodeIDs() {
				var rep efs.CheckReport
				var err error
				if repair {
					var fixes int
					rep, fixes, err = lc.Repair(id)
					if err == nil && fixes > 0 {
						fmt.Printf("node %d: repaired %d bitmap entries\n", i, fixes)
					}
				} else {
					rep, err = lc.Check(id)
				}
				if err != nil {
					return fmt.Errorf("node %d: %w", i, err)
				}
				status := "clean"
				if !rep.OK() {
					status = fmt.Sprintf("%d PROBLEMS", len(rep.Problems))
					bad++
				}
				fmt.Printf("node %d: %d files, %d chained blocks: %s\n", i, rep.Files, rep.ChainBlocks, status)
				for _, p := range rep.Problems {
					fmt.Printf("    %s\n", p)
				}
			}
			if bad > 0 {
				return fmt.Errorf("%d of %d volumes have problems", bad, len(cl.NodeIDs()))
			}
			return nil
		}, nil
	case "info":
		if err := need(0, "info"); err != nil {
			return nil, err
		}
		return func(proc sim.Proc, cl *core.Cluster, c *core.Client) error {
			info, err := c.GetInfo()
			if err != nil {
				return err
			}
			fmt.Printf("Bridge cluster: %d storage nodes, server at %v\n", info.P, info.Server)
			lc := lfs.NewClient(proc, cl.Net, 0, "bridgefs-usage")
			defer lc.C.Close()
			for i, n := range cl.Nodes {
				total, free, err := lc.Usage(n.ID)
				if err != nil {
					return fmt.Errorf("node %d usage: %w", i, err)
				}
				fmt.Printf("  node %d (id %d): %d/%d blocks used\n", i, n.ID, total-free, total)
			}
			return nil
		}, nil
	default:
		return nil, fmt.Errorf("unknown subcommand %q", cmd)
	}
}

// lsOp lists the directory through the server's List command and stats each
// entry for its current size.
func lsOp(proc sim.Proc, cl *core.Cluster, c *core.Client) error {
	names, err := c.List()
	if err != nil {
		return err
	}
	if len(names) == 0 {
		fmt.Println("(no files)")
		return nil
	}
	for _, name := range names {
		meta, err := c.Stat(name)
		if err != nil {
			return err
		}
		fmt.Printf("%8d blocks  %-12s  %s\n", meta.Blocks, meta.Spec.Kind, name)
	}
	return nil
}
